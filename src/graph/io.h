// Text-format graph IO.
//
// Reads the edge-list format used by the SNAP datasets the paper evaluates
// ("# comment" lines followed by "u<TAB>v" pairs, arbitrary vertex ids) and
// a simple binary CSR cache for fast reload. The loader compacts vertex ids
// to a dense range, symmetrizes, deduplicates and drops self loops, exactly
// like the paper's preprocessing.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "graph/graph.h"

namespace graphpi {

/// Parses a SNAP-style edge list from a stream. Lines starting with '#' or
/// '%' are comments; each remaining line holds two whitespace-separated
/// vertex ids. Ids are remapped to a dense 0..n-1 range in order of first
/// appearance.
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// File variant of read_edge_list. Throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] Graph load_edge_list(const std::string& path);

/// Writes "u v" lines, one per undirected edge (u < v), with a statistics
/// header comment.
void write_edge_list(const Graph& g, std::ostream& out);

/// File variant of write_edge_list.
void save_edge_list(const Graph& g, const std::string& path);

/// Serializes the CSR arrays in a little-endian binary format
/// ("GPI1" magic, vertex count, slot count, offsets, neighbors).
void save_binary(const Graph& g, const std::string& path);

/// Loads a graph written by save_binary. Throws std::runtime_error on
/// malformed input.
[[nodiscard]] Graph load_binary(const std::string& path);

}  // namespace graphpi
