#include "graph/digraph.h"

#include <algorithm>
#include <unordered_set>

#include "support/check.h"
#include "support/rng.h"

namespace graphpi {

DirectedGraph::DirectedGraph(
    VertexId n_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& arcs) {
  VertexId n = n_vertices;
  std::vector<std::pair<VertexId, VertexId>> clean;
  clean.reserve(arcs.size());
  for (auto [u, v] : arcs) {
    if (u == v) continue;
    n = std::max(n, std::max(u, v) + 1);
    clean.emplace_back(u, v);
  }
  std::sort(clean.begin(), clean.end());
  clean.erase(std::unique(clean.begin(), clean.end()), clean.end());

  auto build = [n](const std::vector<std::pair<VertexId, VertexId>>& pairs,
                   std::vector<EdgeIndex>& offsets,
                   std::vector<VertexId>& neighbors) {
    offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    for (auto [s, t] : pairs) offsets[s + 1]++;
    for (std::size_t i = 1; i < offsets.size(); ++i)
      offsets[i] += offsets[i - 1];
    neighbors.clear();
    neighbors.reserve(pairs.size());
    for (auto [s, t] : pairs) neighbors.push_back(t);
  };
  build(clean, out_offsets_, out_neighbors_);

  std::vector<std::pair<VertexId, VertexId>> reversed;
  reversed.reserve(clean.size());
  for (auto [u, v] : clean) reversed.emplace_back(v, u);
  std::sort(reversed.begin(), reversed.end());
  build(reversed, in_offsets_, in_neighbors_);
}

bool DirectedGraph::has_arc(VertexId u, VertexId v) const noexcept {
  const auto adj = out_neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

DirectedGraph random_digraph(VertexId n, std::uint64_t arcs,
                             std::uint64_t seed) {
  GRAPHPI_CHECK(n >= 2);
  const std::uint64_t max_arcs =
      static_cast<std::uint64_t>(n) * (n - 1);
  arcs = std::min(arcs, max_arcs);
  support::Xoshiro256StarStar rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<VertexId, VertexId>> list;
  list.reserve(arcs);
  while (list.size() < arcs) {
    const auto u = static_cast<VertexId>(rng.bounded(n));
    const auto v = static_cast<VertexId>(rng.bounded(n));
    if (u == v) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) list.emplace_back(u, v);
  }
  return DirectedGraph(n, list);
}

}  // namespace graphpi
