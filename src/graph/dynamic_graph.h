// Mutable graph with incremental triangle-count maintenance.
//
// Section IV-C: "We assume that the data graph is immutable so that the
// number of triangles (tri_cnt) can be regarded as a constant value. Even
// if the graph is mutable, it is trivial to calculate tri_cnt
// incrementally." This module realizes that claim: a DynamicGraph accepts
// edge insertions/removals, maintains |V|, |E| and tri_cnt exactly, and
// snapshots to the immutable CSR Graph the engines consume. The
// performance model can therefore keep planning against fresh statistics
// without a full recount.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  explicit DynamicGraph(VertexId n_vertices);

  /// Seeds from an immutable graph (O(m) + triangle count).
  explicit DynamicGraph(const Graph& g);

  /// Inserts an undirected edge. Returns false (no-op) for self loops and
  /// already-present edges. O(min-degree) for the triangle delta.
  bool add_edge(VertexId u, VertexId v);

  /// Removes an undirected edge if present; returns whether it existed.
  bool remove_edge(VertexId u, VertexId v);

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  [[nodiscard]] VertexId vertex_count() const noexcept {
    return static_cast<VertexId>(adjacency_.size());
  }
  [[nodiscard]] std::uint64_t edge_count() const noexcept { return edges_; }

  /// Exact triangle count, maintained incrementally across mutations.
  [[nodiscard]] std::uint64_t triangle_count() const noexcept {
    return triangles_;
  }

  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(adjacency_[v].size());
  }

  /// Freezes into the immutable CSR form the engines run on; the cached
  /// triangle count is transferred so the perf model pays nothing.
  [[nodiscard]] Graph snapshot() const;

 private:
  void ensure_vertex(VertexId v);
  /// Number of common neighbors of u and v (the triangle delta of the
  /// edge (u, v)).
  [[nodiscard]] std::uint64_t common_neighbors(VertexId u, VertexId v) const;

  // Sorted-set adjacency supports O(log d) membership and ordered merge
  // for the snapshot.
  std::vector<std::set<VertexId>> adjacency_;
  std::uint64_t edges_ = 0;
  std::uint64_t triangles_ = 0;
};

}  // namespace graphpi
