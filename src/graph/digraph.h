// Directed data graphs.
//
// Section II-A: "... all methods proposed in this paper can be easily
// extended to directed and labeled graphs." This is the directed half:
// a DirectedGraph stores sorted out- and in-adjacency in CSR form; the
// directed matcher (engine/directed.h) intersects out/in neighborhoods
// according to the pattern's arc orientations.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace graphpi {

class DirectedGraph {
 public:
  DirectedGraph() = default;

  /// Builds from an arc list (u -> v). Self loops and duplicate arcs are
  /// dropped; antiparallel arc pairs are kept (they are distinct arcs).
  DirectedGraph(VertexId n_vertices,
                const std::vector<std::pair<VertexId, VertexId>>& arcs);

  [[nodiscard]] VertexId vertex_count() const noexcept {
    return out_offsets_.empty()
               ? 0
               : static_cast<VertexId>(out_offsets_.size() - 1);
  }
  [[nodiscard]] std::uint64_t arc_count() const noexcept {
    return out_neighbors_.size();
  }

  [[nodiscard]] std::span<const VertexId> out_neighbors(
      VertexId v) const noexcept {
    return {out_neighbors_.data() + out_offsets_[v],
            out_neighbors_.data() + out_offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const VertexId> in_neighbors(
      VertexId v) const noexcept {
    return {in_neighbors_.data() + in_offsets_[v],
            in_neighbors_.data() + in_offsets_[v + 1]};
  }

  [[nodiscard]] std::uint32_t out_degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(out_offsets_[v + 1] -
                                      out_offsets_[v]);
  }
  [[nodiscard]] std::uint32_t in_degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// O(log out_degree(u)) membership test for the arc u -> v.
  [[nodiscard]] bool has_arc(VertexId u, VertexId v) const noexcept;

 private:
  std::vector<EdgeIndex> out_offsets_, in_offsets_;
  std::vector<VertexId> out_neighbors_, in_neighbors_;
};

/// Seeded random digraph: `arcs` distinct arcs drawn uniformly.
[[nodiscard]] DirectedGraph random_digraph(VertexId n, std::uint64_t arcs,
                                           std::uint64_t seed);

}  // namespace graphpi
