// Triangle counting.
//
// The performance-prediction model (Section IV-C) needs the data graph's
// triangle count to estimate p2, "the probability of any pair of vertices
// in a neighborhood being connected to each other". The paper treats
// tri_cnt as a precomputed constant of the immutable data graph.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace graphpi {

/// Counts triangles exactly using the standard forward/ordered algorithm:
/// each triangle {a < b < c} is found once by intersecting the higher-id
/// tails of two adjacency lists. OpenMP-parallel over vertices.
[[nodiscard]] std::uint64_t count_triangles(const Graph& g);

}  // namespace graphpi
