// Vertex-labeled graphs.
//
// Section II-A: "all patterns and data graphs are assumed to be undirected
// and unlabeled graphs, although all methods proposed in this paper can be
// easily extended to directed and labeled graphs." This module is that
// extension for vertex labels: a LabeledGraph pairs a CSR Graph with a
// label per vertex, and the matcher restricts every candidate set to
// vertices carrying the pattern vertex's label (see engine/labeled.h).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi {

/// Small integer vertex label.
using Label = std::uint16_t;

class LabeledGraph {
 public:
  LabeledGraph() = default;

  /// Takes a structure graph and one label per vertex.
  LabeledGraph(Graph graph, std::vector<Label> labels);

  [[nodiscard]] const Graph& structure() const noexcept { return graph_; }
  [[nodiscard]] VertexId vertex_count() const noexcept {
    return graph_.vertex_count();
  }
  [[nodiscard]] Label label(VertexId v) const noexcept { return labels_[v]; }
  [[nodiscard]] const std::vector<Label>& labels() const noexcept {
    return labels_;
  }

  /// Number of distinct labels (max label + 1).
  [[nodiscard]] Label label_count() const noexcept { return n_labels_; }

  /// Vertices carrying `l`, sorted ascending (for label-filtered loops).
  [[nodiscard]] std::span<const VertexId> vertices_with_label(Label l) const;

  /// Number of vertices carrying `l`.
  [[nodiscard]] std::size_t label_frequency(Label l) const {
    return vertices_with_label(l).size();
  }

 private:
  Graph graph_;
  std::vector<Label> labels_;
  Label n_labels_ = 0;
  // CSR-style index: by_label_offsets_[l] .. [l+1]) into by_label_.
  std::vector<std::size_t> by_label_offsets_;
  std::vector<VertexId> by_label_;
};

/// Assigns labels deterministically: label(v) = hash(v, seed) % n_labels,
/// optionally degree-biased (hubs get low labels) to mimic real datasets
/// where label frequency correlates with connectivity.
[[nodiscard]] LabeledGraph assign_labels(Graph graph, Label n_labels,
                                         std::uint64_t seed,
                                         bool degree_biased = false);

}  // namespace graphpi
