#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "graph/builder.h"
#include "support/check.h"
#include "support/rng.h"

namespace graphpi {

using support::Xoshiro256StarStar;

namespace {

/// Packs an undirected edge into a canonical 64-bit key for dedup.
std::uint64_t edge_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph erdos_renyi(VertexId n, std::uint64_t m, std::uint64_t seed) {
  GRAPHPI_CHECK(n >= 2);
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);

  Xoshiro256StarStar rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  GraphBuilder b(n);
  while (seen.size() < m) {
    const auto u = static_cast<VertexId>(rng.bounded(n));
    const auto v = static_cast<VertexId>(rng.bounded(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph power_law(VertexId n, std::uint64_t target_edges, double alpha,
                std::uint64_t seed) {
  GRAPHPI_CHECK(n >= 2);
  GRAPHPI_CHECK_MSG(alpha > 1.0, "power-law exponent must exceed 1");

  // Chung–Lu weights w_i = (i + i0)^(-1/(alpha-1)); sampling endpoints
  // proportionally to w yields a graph whose degree distribution follows a
  // power law with exponent alpha.
  const double gamma = 1.0 / (alpha - 1.0);
  const double i0 = 10.0;  // damps the largest hubs to keep max degree sane
  std::vector<double> cumulative(n);
  double acc = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    acc += std::pow(static_cast<double>(i) + i0, -gamma);
    cumulative[i] = acc;
  }
  const double total_weight = acc;

  Xoshiro256StarStar rng(seed);
  auto sample_vertex = [&]() -> VertexId {
    const double x = rng.uniform() * total_weight;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), x);
    return static_cast<VertexId>(it - cumulative.begin());
  };

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(target_edges * 2);
  GraphBuilder b(n);
  // Cap attempts so pathological parameters terminate; dedup causes the
  // realized edge count to land slightly under target on dense requests.
  const std::uint64_t max_attempts = target_edges * 20 + 1000;
  std::uint64_t attempts = 0;
  while (seen.size() < target_edges && attempts < max_attempts) {
    ++attempts;
    const VertexId u = sample_vertex();
    const VertexId v = sample_vertex();
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph clustered_power_law(VertexId n, std::uint64_t target_edges, double alpha,
                          double closure_p, std::uint64_t seed) {
  // Reserve a share of the edge budget for closure edges so the final size
  // still approximates target_edges.
  const auto base_edges = static_cast<std::uint64_t>(
      static_cast<double>(target_edges) / (1.0 + closure_p));
  Graph base = power_law(n, base_edges, alpha, seed);

  Xoshiro256StarStar rng(seed ^ 0x9e3779b97f4a7c15ULL);
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v : base.neighbors(u))
      if (u < v && seen.insert(edge_key(u, v)).second) b.add_edge(u, v);

  // Triangle closing: walk random 2-paths b-a-c and close (b,c).
  const std::uint64_t closures =
      static_cast<std::uint64_t>(closure_p * static_cast<double>(base_edges));
  std::uint64_t added = 0, attempts = 0;
  const std::uint64_t max_attempts = closures * 30 + 1000;
  while (added < closures && attempts < max_attempts) {
    ++attempts;
    const auto a = static_cast<VertexId>(rng.bounded(n));
    const auto deg = base.degree(a);
    if (deg < 2) continue;
    const auto adj = base.neighbors(a);
    const VertexId x = adj[rng.bounded(deg)];
    const VertexId y = adj[rng.bounded(deg)];
    if (x == y) continue;
    if (seen.insert(edge_key(x, y)).second) {
      b.add_edge(x, y);
      ++added;
    }
  }
  return b.build();
}

Graph complete_graph(VertexId n) {
  GRAPHPI_CHECK(n >= 1);
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph cycle_graph(VertexId n) {
  GRAPHPI_CHECK(n >= 3);
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Graph star_graph(VertexId n) {
  GRAPHPI_CHECK(n >= 2);
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph random_regular(VertexId n, std::uint32_t d, std::uint64_t seed) {
  GRAPHPI_CHECK(n >= 2);
  Xoshiro256StarStar rng(seed);
  GraphBuilder b(n);
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  // d rounds of random near-perfect matchings: shuffle and pair up.
  for (std::uint32_t round = 0; round < d; ++round) {
    for (VertexId i = n; i > 1; --i)
      std::swap(perm[i - 1], perm[rng.bounded(i)]);
    for (VertexId i = 0; i + 1 < n; i += 2) b.add_edge(perm[i], perm[i + 1]);
  }
  return b.build();
}

Graph rmat(std::uint32_t scale, std::uint64_t target_edges, std::uint64_t seed,
           double a, double b, double c) {
  GRAPHPI_CHECK(scale >= 1 && scale < 32);
  GRAPHPI_CHECK_MSG(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
                    "R-MAT quadrant probabilities must sum below 1");
  const VertexId n = VertexId{1} << scale;
  const std::uint64_t max_edges = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  target_edges = std::min(target_edges, max_edges);

  Xoshiro256StarStar rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(target_edges * 2);
  GraphBuilder builder(n);
  // Each edge descends `scale` levels of the recursive adjacency matrix,
  // picking a quadrant per level; duplicates and self loops are redrawn.
  const std::uint64_t max_attempts = target_edges * 30 + 1000;
  std::uint64_t attempts = 0;
  while (seen.size() < target_edges && attempts < max_attempts) {
    ++attempts;
    VertexId u = 0, v = 0;
    for (std::uint32_t level = 0; level < scale; ++level) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: neither bit set
      } else if (r < a + b) {
        v |= 1;  // top-right
      } else if (r < a + b + c) {
        u |= 1;  // bottom-left
      } else {
        u |= 1;  // bottom-right
        v |= 1;
      }
    }
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph grid_graph(VertexId rows, VertexId cols) {
  GRAPHPI_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  GraphBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r)
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  return b.build();
}

}  // namespace graphpi
