// Fundamental integer types shared across the graph substrate.
#pragma once

#include <cstdint>

namespace graphpi {

/// Vertex identifier in a data graph. 32 bits covers every SNAP graph the
/// paper evaluates (Twitter has 41.7M vertices).
using VertexId = std::uint32_t;

/// Index into the CSR edge array. 64 bits: Twitter has 1.2B undirected edges
/// = 2.4B directed slots.
using EdgeIndex = std::uint64_t;

/// Embedding counts. Counting (not listing) results can be very large; all
/// public counting APIs use this type.
using Count = std::uint64_t;

}  // namespace graphpi
