// Structural graph analysis utilities.
//
// These support the evaluation harness (dataset characterization beyond
// Table I's |V|/|E|) and downstream users: degeneracy/k-core ordering is
// the standard preprocessing for orientation-based mining, connected
// components sanity-check generated stand-ins, and the clustering
// coefficient relates directly to the perf model's p2 statistic.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi {

/// Connected components: returns component id per vertex (0-based, in
/// order of first discovery) and the number of components.
struct ComponentResult {
  std::vector<VertexId> component;
  VertexId count = 0;

  /// Size of the largest component.
  [[nodiscard]] std::size_t largest() const;
};
[[nodiscard]] ComponentResult connected_components(const Graph& g);

/// Core decomposition (Matula–Beck peeling): core[v] is the largest k
/// such that v belongs to the k-core. O(m).
struct CoreResult {
  std::vector<std::uint32_t> core;
  std::uint32_t degeneracy = 0;       ///< max core number
  std::vector<VertexId> peel_order;   ///< vertices in removal order
};
[[nodiscard]] CoreResult core_decomposition(const Graph& g);

/// Global clustering coefficient: 3 * triangles / open wedges.
[[nodiscard]] double global_clustering_coefficient(const Graph& g);

/// Average local clustering coefficient (Watts–Strogatz).
[[nodiscard]] double average_local_clustering(const Graph& g);

/// Degree histogram: result[d] = number of vertices of degree d.
[[nodiscard]] std::vector<std::uint64_t> degree_histogram(const Graph& g);

/// BFS distances from `source` (unreachable = UINT32_MAX).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       VertexId source);

/// Relabels vertices so that ids follow the given order (order[i] becomes
/// vertex i). Degree-descending relabeling improves intersection locality
/// and is the standard layout optimization in mining systems.
[[nodiscard]] Graph relabel(const Graph& g,
                            const std::vector<VertexId>& order);

/// Convenience: relabel by descending degree (stable).
[[nodiscard]] Graph relabel_by_degree(const Graph& g);

}  // namespace graphpi
