// Sorted vertex-set kernels.
//
// These are the hot loops of the whole system: every level of the
// nested-loop pattern-matching algorithm builds its candidate set by
// intersecting sorted neighborhoods (Section IV-E: "the intersection
// operation of two sets can be efficiently implemented with the time
// complexity of O(n + m), and the intersection is naturally sorted").
//
// All functions require strictly ascending inputs and produce strictly
// ascending outputs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace graphpi {

/// out = a ∩ b (merge-based, O(|a| + |b|)). `out` is cleared first.
void intersect(std::span<const VertexId> a, std::span<const VertexId> b,
               std::vector<VertexId>& out);

/// |a ∩ b| without materializing the result.
[[nodiscard]] std::size_t intersect_size(std::span<const VertexId> a,
                                         std::span<const VertexId> b);

/// out = { x ∈ a ∩ b : x < bound }. Used when a restriction id(u) > id(x)
/// applies to the vertex whose candidate set is being built — the bound
/// prunes the set during construction instead of breaking in the loop.
void intersect_below(std::span<const VertexId> a, std::span<const VertexId> b,
                     VertexId bound, std::vector<VertexId>& out);

/// Galloping (binary-search) intersection; profitable when |a| << |b|.
/// Produces the same result as `intersect`.
void intersect_gallop(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>& out);

/// Size-adaptive intersection: picks merge or gallop based on the size
/// ratio of the inputs.
void intersect_adaptive(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId>& out);

/// Removes from the sorted set `s` every element that appears in the
/// (small, unsorted) exclusion list. O(|excl| * log |s| + moved elements).
void remove_all(std::vector<VertexId>& s, std::span<const VertexId> excluded);

/// Number of elements of the sorted set `s` that appear in the (small,
/// unsorted) list `values`.
[[nodiscard]] std::size_t count_present(std::span<const VertexId> s,
                                        std::span<const VertexId> values);

/// True iff sorted set `s` contains `v`.
[[nodiscard]] bool contains(std::span<const VertexId> s, VertexId v);

/// Number of elements of sorted `s` strictly below `bound`.
[[nodiscard]] std::size_t count_below(std::span<const VertexId> s,
                                      VertexId bound);

/// Number of elements of sorted `s` strictly above `bound`.
[[nodiscard]] std::size_t count_above(std::span<const VertexId> s,
                                      VertexId bound);

}  // namespace graphpi
