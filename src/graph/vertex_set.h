// Sorted vertex-set kernels.
//
// These are the hot loops of the whole system: every level of the
// nested-loop pattern-matching algorithm builds its candidate set by
// intersecting sorted neighborhoods (Section IV-E: "the intersection
// operation of two sets can be efficiently implemented with the time
// complexity of O(n + m), and the intersection is naturally sorted").
//
// Kernel layout:
//   * `*_scalar` functions are the portable reference implementations;
//     they are always compiled and are the ground truth the property
//     tests compare every other variant against.
//   * The un-suffixed entry points (`intersect`, `intersect_size`, ...)
//     dispatch at RUNTIME through a cpuid-probed kernel table: the AVX2
//     and AVX-512 (VBMI2 compress-store) implementations are compiled
//     unconditionally on x86 (per-function `target(...)` attributes, so
//     the baseline build stays portable) and the widest slot the
//     executing CPU supports is selected at load time — one binary
//     serves scalar, AVX2, and AVX-512 machines without recompiling.
//     `select_kernel_isa()` / `force_scalar_kernels()` switch the table
//     at runtime, and the GRAPHPI_KERNEL_ISA environment variable
//     ("scalar" | "avx2" | "avx512" | "auto") pins the initial choice.
//     Generated kernels (src/codegen/) call back into these same entry
//     points, so the dispatch decision covers interpreted and compiled
//     execution alike.
//   * `*_size*` variants compute |result| without materializing it; the
//     matcher's innermost loop and single-block IEP terms go through
//     these so counting runs allocate nothing at the leaves.
//   * `*_bitmap` variants intersect a sorted span against a precomputed
//     bitmap row (one bit per data-graph vertex, see Graph::hub_bits) —
//     O(|span|) membership-test intersection used when one side is a
//     high-degree hub.
//
// All span inputs must be strictly ascending; outputs are strictly
// ascending.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/types.h"

namespace graphpi {

/// Sentinel for "no upper bound" in the bounded size kernels.
inline constexpr VertexId kNoVertexBound = std::numeric_limits<VertexId>::max();

// ---------------------------------------------------------------------------
// Runtime CPU dispatch.
//
// The hot kernels exist in one slot per ISA; a global table pointer picks
// the slot. Selection is an unsynchronized global (like the old
// force_scalar flag): switch it only while no matcher is running.
// ---------------------------------------------------------------------------

/// Kernel instruction-set slots. kAuto means "best the CPU supports".
enum class KernelIsa {
  kAuto,
  kScalar,
  kAvx2,
  /// AVX2 match core + VBMI2-family compress-store retire
  /// (`vpcompressd`) + VPOPCNTDQ bitmap popcount; requires
  /// avx512f+bw+vl+vbmi2+vpopcntdq (Ice Lake+). Kept at the AVX2 match
  /// width on purpose: all-pairs matching costs B^2 comparisons per >= B
  /// elements consumed, so 16-lane blocks measure slower (see the tier
  /// comment in vertex_set.cpp).
  kAvx512,
};

[[nodiscard]] const char* to_string(KernelIsa isa) noexcept;

/// True when the executing CPU can run `isa` (cpuid probe; kAuto and
/// kScalar are always true). Independent of whether a kernel slot exists.
[[nodiscard]] bool cpu_supports(KernelIsa isa) noexcept;

/// ISA of the kernel table the dispatching entry points currently use.
/// Never returns kAuto.
[[nodiscard]] KernelIsa active_kernel_isa() noexcept;

/// Name of the active table ("avx512", "avx2" or "scalar").
[[nodiscard]] const char* active_isa() noexcept;

/// Name of the best table this CPU supports (what kAuto resolves to,
/// before any GRAPHPI_KERNEL_ISA override).
[[nodiscard]] const char* detected_isa() noexcept;

/// Routes the dispatching kernels to `isa`. Returns false (and leaves the
/// selection unchanged) when the CPU lacks the feature.
bool select_kernel_isa(KernelIsa isa) noexcept;

/// Name of the active kernel backend. Kept for older call sites; equal to
/// active_isa() now that the choice is made at runtime.
[[nodiscard]] const char* simd_backend() noexcept;

/// True when the dispatching kernels currently use vector instructions.
[[nodiscard]] bool simd_enabled() noexcept;

/// Test/benchmark hook: `force_scalar_kernels(true)` selects the scalar
/// table, `(false)` restores the best probed table — sugar over
/// select_kernel_isa so existing call sites keep working.
void force_scalar_kernels(bool on) noexcept;

/// True when the scalar table is active on a machine whose best table is
/// vectorized (i.e. scalar was forced rather than all the CPU offers).
[[nodiscard]] bool scalar_kernels_forced() noexcept;

// ---------------------------------------------------------------------------
// Scalar reference kernels (ground truth for the property tests).
// ---------------------------------------------------------------------------

/// out = a ∩ b (two-pointer merge, O(|a| + |b|)). `out` is cleared first.
void intersect_scalar(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>& out);

/// |a ∩ b| without materializing the result.
[[nodiscard]] std::size_t intersect_size_scalar(std::span<const VertexId> a,
                                                std::span<const VertexId> b);

// ---------------------------------------------------------------------------
// Dispatching kernels (routed through the runtime-selected table).
// ---------------------------------------------------------------------------

/// Writes a ∩ b to `out` and returns the element count. `out` must have
/// capacity for min(|a|, |b|) + 8 elements — the vector slots store full
/// 8-lane blocks at the current match offset. This is the raw core the
/// vector-output `intersect` wraps, and the entry point generated kernels
/// call through the codegen ops table (codegen/kernel_abi.h).
[[nodiscard]] std::size_t intersect_into(std::span<const VertexId> a,
                                         std::span<const VertexId> b,
                                         VertexId* out);

/// out = a ∩ b. `out` is cleared first.
void intersect(std::span<const VertexId> a, std::span<const VertexId> b,
               std::vector<VertexId>& out);

/// |a ∩ b| without materializing the result.
[[nodiscard]] std::size_t intersect_size(std::span<const VertexId> a,
                                         std::span<const VertexId> b);

/// |{ x ∈ a ∩ b : lo_inclusive <= x < hi_exclusive }| — the counting-only
/// leaf kernel: the restriction window is applied by trimming both inputs
/// with binary searches before the vectorized count, so no candidate
/// vector is ever built. Pass 0 / kNoVertexBound for an open side.
[[nodiscard]] std::size_t intersect_size_bounded(std::span<const VertexId> a,
                                                 std::span<const VertexId> b,
                                                 VertexId lo_inclusive,
                                                 VertexId hi_exclusive);

/// out = { x ∈ a ∩ b : x < bound }. Used when a restriction id(u) > id(x)
/// applies to the vertex whose candidate set is being built — the bound
/// prunes the set during construction instead of breaking in the loop.
void intersect_below(std::span<const VertexId> a, std::span<const VertexId> b,
                     VertexId bound, std::vector<VertexId>& out);

/// Galloping (binary-search) intersection; profitable when |a| << |b|.
/// Produces the same result as `intersect`.
void intersect_gallop(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>& out);

/// Size-only galloping intersection.
[[nodiscard]] std::size_t intersect_size_gallop(std::span<const VertexId> a,
                                                std::span<const VertexId> b);

/// Size-adaptive intersection: picks merge or gallop based on the size
/// ratio of the inputs.
void intersect_adaptive(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId>& out);

/// Size-only adaptive intersection (merge/SIMD vs gallop by size ratio).
[[nodiscard]] std::size_t intersect_size_adaptive(std::span<const VertexId> a,
                                                  std::span<const VertexId> b);

/// Bounded size-only adaptive intersection: trims both inputs to the
/// window [lo_inclusive, hi_exclusive) first, then counts adaptively.
[[nodiscard]] std::size_t intersect_size_bounded_adaptive(
    std::span<const VertexId> a, std::span<const VertexId> b,
    VertexId lo_inclusive, VertexId hi_exclusive);

// ---------------------------------------------------------------------------
// Bitmap kernels (one side is a precomputed bitmap over the vertex space).
// ---------------------------------------------------------------------------

/// out = { x ∈ a : bit x set in `bits` }. O(|a|) with branch-free probes.
void intersect_bitmap(std::span<const VertexId> a, const std::uint64_t* bits,
                      std::vector<VertexId>& out);

/// Raw-pointer form of intersect_bitmap: writes survivors to `out`
/// (capacity >= |a|) and returns the count.
[[nodiscard]] std::size_t intersect_bitmap_into(std::span<const VertexId> a,
                                                const std::uint64_t* bits,
                                                VertexId* out);

/// |{ x ∈ a : bit x set }|.
[[nodiscard]] std::size_t intersect_size_bitmap(std::span<const VertexId> a,
                                                const std::uint64_t* bits);

/// |{ x ∈ a : bit x set, lo_inclusive <= x < hi_exclusive }|.
[[nodiscard]] std::size_t intersect_size_bitmap_bounded(
    std::span<const VertexId> a, const std::uint64_t* bits,
    VertexId lo_inclusive, VertexId hi_exclusive);

/// Word-parallel popcount of `a AND b` over `words` 64-bit words — the
/// hub-vs-hub counting kernel (64 membership tests per word op).
[[nodiscard]] std::size_t bitmap_and_popcount(const std::uint64_t* a,
                                              const std::uint64_t* b,
                                              std::size_t words);

/// Windowed hub-vs-hub count: popcount of `a AND b` restricted to bit
/// positions in [lo_inclusive, hi_exclusive) ∩ [0, universe).
[[nodiscard]] std::size_t bitmap_and_popcount_bounded(const std::uint64_t* a,
                                                      const std::uint64_t* b,
                                                      VertexId universe,
                                                      VertexId lo_inclusive,
                                                      VertexId hi_exclusive);

// ---------------------------------------------------------------------------
// Varint decode kernels (the snapshot block codec, io/snapshot.h).
//
// Graph snapshots store delta-encoded adjacency as LEB128 varints; with
// degree-ordered relabeling most deltas fit one byte, so the vector
// slots sweep runs of continuation-free bytes 16 (AVX2) or 64 (AVX-512)
// at a time — probe the high bits with one movemask, widen with cvtepu8
// — and expand mixed 1-/2-byte groups branchlessly through a
// masked-VByte-style pshufb lookup table, peeling to scalar only for
// the rare >= 3-byte value.
// ---------------------------------------------------------------------------

/// Error sentinel for the varint decoders' byte-consumed return value.
inline constexpr std::size_t kVarintMalformed =
    std::numeric_limits<std::size_t>::max();

/// Decodes exactly `count` LEB128 varints from `in` into `out` (which
/// must have room for `count` values). Returns the number of input bytes
/// consumed, or kVarintMalformed when the stream is truncated or a value
/// does not fit 32 bits (at most 5 bytes; the 5th may only carry 4 bits).
/// Dispatching entry point (runtime-selected table).
[[nodiscard]] std::size_t varint_decode_u32(std::span<const std::uint8_t> in,
                                            std::size_t count,
                                            std::uint32_t* out);

/// Portable reference decoder (ground truth for the property tests).
[[nodiscard]] std::size_t varint_decode_u32_scalar(
    std::span<const std::uint8_t> in, std::size_t count, std::uint32_t* out);

// ---------------------------------------------------------------------------
// Small-set helpers.
// ---------------------------------------------------------------------------

/// Removes from the sorted set `s` every element that appears in the
/// (small, unsorted) exclusion list. O(|excl| * log |s| + moved elements).
void remove_all(std::vector<VertexId>& s, std::span<const VertexId> excluded);

/// Number of elements of the sorted set `s` that appear in the (small,
/// unsorted) list `values`.
[[nodiscard]] std::size_t count_present(std::span<const VertexId> s,
                                        std::span<const VertexId> values);

/// True iff sorted set `s` contains `v`.
[[nodiscard]] bool contains(std::span<const VertexId> s, VertexId v);

/// Number of elements of sorted `s` strictly below `bound`.
[[nodiscard]] std::size_t count_below(std::span<const VertexId> s,
                                      VertexId bound);

/// Number of elements of sorted `s` strictly above `bound`.
[[nodiscard]] std::size_t count_above(std::span<const VertexId> s,
                                      VertexId bound);

/// Trims sorted `s` to the window [lo_inclusive, hi_exclusive).
[[nodiscard]] std::span<const VertexId> trim_to_window(
    std::span<const VertexId> s, VertexId lo_inclusive, VertexId hi_exclusive);

}  // namespace graphpi
