// Sorted vertex-set kernels.
//
// These are the hot loops of the whole system: every level of the
// nested-loop pattern-matching algorithm builds its candidate set by
// intersecting sorted neighborhoods (Section IV-E: "the intersection
// operation of two sets can be efficiently implemented with the time
// complexity of O(n + m), and the intersection is naturally sorted").
//
// Kernel layout:
//   * `*_scalar` functions are the portable reference implementations;
//     they are always compiled and are the ground truth the property
//     tests compare every other variant against.
//   * The un-suffixed entry points (`intersect`, `intersect_size`, ...)
//     dispatch to an AVX2 implementation when the translation unit is
//     compiled with AVX2 support (`-march=native` / `-mavx2`, see the
//     top-level CMake option GRAPHPI_NATIVE) and to the scalar reference
//     otherwise. The choice is made at compile time — the hot loops
//     contain no runtime feature branches.
//   * `*_size*` variants compute |result| without materializing it; the
//     matcher's innermost loop and single-block IEP terms go through
//     these so counting runs allocate nothing at the leaves.
//   * `*_bitmap` variants intersect a sorted span against a precomputed
//     bitmap row (one bit per data-graph vertex, see Graph::hub_bits) —
//     O(|span|) membership-test intersection used when one side is a
//     high-degree hub.
//
// All span inputs must be strictly ascending; outputs are strictly
// ascending.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/types.h"

namespace graphpi {

/// Sentinel for "no upper bound" in the bounded size kernels.
inline constexpr VertexId kNoVertexBound = std::numeric_limits<VertexId>::max();

/// Name of the compiled-in kernel backend ("avx2" or "scalar").
[[nodiscard]] const char* simd_backend() noexcept;

/// True when the dispatching kernels use vector instructions.
[[nodiscard]] bool simd_enabled() noexcept;

/// Test/benchmark hook: routes the dispatching kernels to the scalar
/// reference at runtime, so an AVX2 build can measure and property-test
/// the fallback without recompiling. A no-op in scalar builds. The flag is
/// an unsynchronized global — toggle it only while no matcher is running.
void force_scalar_kernels(bool on) noexcept;
[[nodiscard]] bool scalar_kernels_forced() noexcept;

// ---------------------------------------------------------------------------
// Scalar reference kernels (ground truth for the property tests).
// ---------------------------------------------------------------------------

/// out = a ∩ b (two-pointer merge, O(|a| + |b|)). `out` is cleared first.
void intersect_scalar(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>& out);

/// |a ∩ b| without materializing the result.
[[nodiscard]] std::size_t intersect_size_scalar(std::span<const VertexId> a,
                                                std::span<const VertexId> b);

// ---------------------------------------------------------------------------
// Dispatching kernels (AVX2 when compiled in, scalar otherwise).
// ---------------------------------------------------------------------------

/// out = a ∩ b. `out` is cleared first.
void intersect(std::span<const VertexId> a, std::span<const VertexId> b,
               std::vector<VertexId>& out);

/// |a ∩ b| without materializing the result.
[[nodiscard]] std::size_t intersect_size(std::span<const VertexId> a,
                                         std::span<const VertexId> b);

/// |{ x ∈ a ∩ b : lo_inclusive <= x < hi_exclusive }| — the counting-only
/// leaf kernel: the restriction window is applied by trimming both inputs
/// with binary searches before the vectorized count, so no candidate
/// vector is ever built. Pass 0 / kNoVertexBound for an open side.
[[nodiscard]] std::size_t intersect_size_bounded(std::span<const VertexId> a,
                                                 std::span<const VertexId> b,
                                                 VertexId lo_inclusive,
                                                 VertexId hi_exclusive);

/// out = { x ∈ a ∩ b : x < bound }. Used when a restriction id(u) > id(x)
/// applies to the vertex whose candidate set is being built — the bound
/// prunes the set during construction instead of breaking in the loop.
void intersect_below(std::span<const VertexId> a, std::span<const VertexId> b,
                     VertexId bound, std::vector<VertexId>& out);

/// Galloping (binary-search) intersection; profitable when |a| << |b|.
/// Produces the same result as `intersect`.
void intersect_gallop(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>& out);

/// Size-only galloping intersection.
[[nodiscard]] std::size_t intersect_size_gallop(std::span<const VertexId> a,
                                                std::span<const VertexId> b);

/// Size-adaptive intersection: picks merge or gallop based on the size
/// ratio of the inputs.
void intersect_adaptive(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId>& out);

/// Size-only adaptive intersection (merge/SIMD vs gallop by size ratio).
[[nodiscard]] std::size_t intersect_size_adaptive(std::span<const VertexId> a,
                                                  std::span<const VertexId> b);

/// Bounded size-only adaptive intersection: trims both inputs to the
/// window [lo_inclusive, hi_exclusive) first, then counts adaptively.
[[nodiscard]] std::size_t intersect_size_bounded_adaptive(
    std::span<const VertexId> a, std::span<const VertexId> b,
    VertexId lo_inclusive, VertexId hi_exclusive);

// ---------------------------------------------------------------------------
// Bitmap kernels (one side is a precomputed bitmap over the vertex space).
// ---------------------------------------------------------------------------

/// out = { x ∈ a : bit x set in `bits` }. O(|a|) with branch-free probes.
void intersect_bitmap(std::span<const VertexId> a, const std::uint64_t* bits,
                      std::vector<VertexId>& out);

/// |{ x ∈ a : bit x set }|.
[[nodiscard]] std::size_t intersect_size_bitmap(std::span<const VertexId> a,
                                                const std::uint64_t* bits);

/// |{ x ∈ a : bit x set, lo_inclusive <= x < hi_exclusive }|.
[[nodiscard]] std::size_t intersect_size_bitmap_bounded(
    std::span<const VertexId> a, const std::uint64_t* bits,
    VertexId lo_inclusive, VertexId hi_exclusive);

/// Word-parallel popcount of `a AND b` over `words` 64-bit words — the
/// hub-vs-hub counting kernel (64 membership tests per word op).
[[nodiscard]] std::size_t bitmap_and_popcount(const std::uint64_t* a,
                                              const std::uint64_t* b,
                                              std::size_t words);

/// Windowed hub-vs-hub count: popcount of `a AND b` restricted to bit
/// positions in [lo_inclusive, hi_exclusive) ∩ [0, universe).
[[nodiscard]] std::size_t bitmap_and_popcount_bounded(const std::uint64_t* a,
                                                      const std::uint64_t* b,
                                                      VertexId universe,
                                                      VertexId lo_inclusive,
                                                      VertexId hi_exclusive);

// ---------------------------------------------------------------------------
// Small-set helpers.
// ---------------------------------------------------------------------------

/// Removes from the sorted set `s` every element that appears in the
/// (small, unsorted) exclusion list. O(|excl| * log |s| + moved elements).
void remove_all(std::vector<VertexId>& s, std::span<const VertexId> excluded);

/// Number of elements of the sorted set `s` that appear in the (small,
/// unsorted) list `values`.
[[nodiscard]] std::size_t count_present(std::span<const VertexId> s,
                                        std::span<const VertexId> values);

/// True iff sorted set `s` contains `v`.
[[nodiscard]] bool contains(std::span<const VertexId> s, VertexId v);

/// Number of elements of sorted `s` strictly below `bound`.
[[nodiscard]] std::size_t count_below(std::span<const VertexId> s,
                                      VertexId bound);

/// Number of elements of sorted `s` strictly above `bound`.
[[nodiscard]] std::size_t count_above(std::span<const VertexId> s,
                                      VertexId bound);

/// Trims sorted `s` to the window [lo_inclusive, hi_exclusive).
[[nodiscard]] std::span<const VertexId> trim_to_window(
    std::span<const VertexId> s, VertexId lo_inclusive, VertexId hi_exclusive);

}  // namespace graphpi
