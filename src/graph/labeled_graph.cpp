#include "graph/labeled_graph.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"
#include "support/rng.h"

namespace graphpi {

LabeledGraph::LabeledGraph(Graph graph, std::vector<Label> labels)
    : graph_(std::move(graph)), labels_(std::move(labels)) {
  GRAPHPI_CHECK_MSG(labels_.size() == graph_.vertex_count(),
                    "one label per vertex required");
  Label max_label = 0;
  for (Label l : labels_) max_label = std::max(max_label, l);
  n_labels_ = static_cast<Label>(labels_.empty() ? 0 : max_label + 1);

  // Build the label -> sorted vertex list index (counting sort).
  by_label_offsets_.assign(static_cast<std::size_t>(n_labels_) + 1, 0);
  for (Label l : labels_) by_label_offsets_[l + 1]++;
  for (std::size_t i = 1; i < by_label_offsets_.size(); ++i)
    by_label_offsets_[i] += by_label_offsets_[i - 1];
  by_label_.resize(labels_.size());
  std::vector<std::size_t> cursor(by_label_offsets_.begin(),
                                  by_label_offsets_.end() - 1);
  for (VertexId v = 0; v < graph_.vertex_count(); ++v)
    by_label_[cursor[labels_[v]]++] = v;  // ascending v per label
}

std::span<const VertexId> LabeledGraph::vertices_with_label(Label l) const {
  if (l >= n_labels_) return {};
  return {by_label_.data() + by_label_offsets_[l],
          by_label_.data() + by_label_offsets_[l + 1]};
}

LabeledGraph assign_labels(Graph graph, Label n_labels, std::uint64_t seed,
                           bool degree_biased) {
  GRAPHPI_CHECK(n_labels >= 1);
  const VertexId n = graph.vertex_count();
  std::vector<Label> labels(n);
  support::SplitMix64 mix(seed);
  if (!degree_biased) {
    for (VertexId v = 0; v < n; ++v)
      labels[v] = static_cast<Label>(
          (mix.next() ^ (static_cast<std::uint64_t>(v) * 0x9e3779b9)) %
          n_labels);
  } else {
    // Rank vertices by degree; split ranks into label buckets so label 0
    // holds the hubs. Frequencies stay roughly equal but structure
    // correlates with the label, as in e.g. protein-interaction data.
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&graph](VertexId a, VertexId b) {
      return graph.degree(a) > graph.degree(b);
    });
    for (VertexId rank = 0; rank < n; ++rank)
      labels[order[rank]] = static_cast<Label>(
          (static_cast<std::uint64_t>(rank) * n_labels) / std::max(n, 1u));
  }
  return LabeledGraph(std::move(graph), std::move(labels));
}

}  // namespace graphpi
