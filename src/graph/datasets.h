// Synthetic stand-ins for the paper's evaluation datasets (Table I).
//
// The SNAP graphs (Wiki-Vote, MiCo, Patents, LiveJournal, Orkut, Twitter)
// are not downloadable in this offline environment. Each stand-in is a
// seeded clustered power-law graph sized so that the full benchmark suite
// completes on a single core. Note that shrinking |V| at the published
// |E|/|V| ratio would inflate the edge probability p1 quadratically and
// explode subgraph counts, so average degree is reduced alongside vertex
// count; the paper's relative ordering of the graphs (size, density,
// degree skew, clustering) is preserved:
//
//   name         paper |V|,|E|          stand-in |V|,|E| (scale 1.0)
//   wiki_vote    7.1K, 100.8K           3K,  24K   (densest small graph)
//   mico         96.6K, 1.1M            4K,  24K   (highest clustering)
//   patents      3.8M, 16.5M            12K, 60K   (largest, sparsest)
//   livejournal  4.0M, 34.7M            8K,  56K
//   orkut        3.1M, 117.2M           4K,  48K   (highest density)
//   twitter      41.7M, 1.2B            12K, 144K  (largest workload)
//
// Every load is deterministic: the seed is derived from the dataset name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace graphpi::datasets {

/// Static description of one evaluation dataset.
struct DatasetSpec {
  std::string name;              ///< canonical lower-case name
  std::string description;       ///< Table I description column
  std::uint64_t paper_vertices;  ///< |V| reported in the paper
  std::uint64_t paper_edges;     ///< |E| reported in the paper
  VertexId standin_vertices;     ///< stand-in |V| at scale 1.0
  std::uint64_t standin_edges;   ///< stand-in |E| target at scale 1.0
  double alpha;                  ///< power-law exponent of the stand-in
  double closure_p;              ///< triangle-closing share (clustering)
};

/// All six datasets of Table I, in paper order.
[[nodiscard]] const std::vector<DatasetSpec>& specs();

/// Looks up a spec by name; throws std::out_of_range for unknown names.
[[nodiscard]] const DatasetSpec& spec(const std::string& name);

/// Generates the stand-in graph for `spec` with both |V| and |E| multiplied
/// by `scale` (>0). Deterministic per (name, scale).
[[nodiscard]] Graph load(const DatasetSpec& spec, double scale = 1.0);

/// Name-based convenience overload.
[[nodiscard]] Graph load(const std::string& name, double scale = 1.0);

}  // namespace graphpi::datasets
