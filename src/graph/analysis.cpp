#include "graph/analysis.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "graph/builder.h"
#include "graph/vertex_set.h"
#include "support/check.h"

namespace graphpi {

std::size_t ComponentResult::largest() const {
  std::vector<std::size_t> sizes(count, 0);
  for (VertexId c : component) sizes[c]++;
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

ComponentResult connected_components(const Graph& g) {
  const VertexId n = g.vertex_count();
  ComponentResult result;
  result.component.assign(n, std::numeric_limits<VertexId>::max());
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (result.component[start] != std::numeric_limits<VertexId>::max())
      continue;
    const VertexId id = result.count++;
    stack.push_back(start);
    result.component[start] = id;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : g.neighbors(v))
        if (result.component[w] == std::numeric_limits<VertexId>::max()) {
          result.component[w] = id;
          stack.push_back(w);
        }
    }
  }
  return result;
}

CoreResult core_decomposition(const Graph& g) {
  const VertexId n = g.vertex_count();
  CoreResult result;
  result.core.assign(n, 0);
  result.peel_order.reserve(n);
  if (n == 0) return result;

  // Bucket-queue peeling (Matula–Beck): repeatedly remove a vertex of
  // minimum remaining degree.
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);

  std::uint32_t current = 0;
  std::uint32_t cursor = 0;
  VertexId processed = 0;
  while (processed < n) {
    // Find the lowest non-empty bucket at or below the walk position.
    cursor = std::min<std::uint32_t>(cursor, current);
    while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
    GRAPHPI_CHECK(cursor <= max_deg);
    const VertexId v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[v] || deg[v] != cursor) continue;  // stale entry
    removed[v] = true;
    ++processed;
    current = std::max(current, cursor);
    result.core[v] = current;
    result.peel_order.push_back(v);
    for (VertexId w : g.neighbors(v)) {
      if (removed[w]) continue;
      if (deg[w] > 0) {
        --deg[w];
        buckets[deg[w]].push_back(w);
        cursor = std::min(cursor, deg[w]);
      }
    }
  }
  result.degeneracy = current;
  return result;
}

double global_clustering_coefficient(const Graph& g) {
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const std::uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(g.triangle_count()) /
         static_cast<double>(wedges);
}

double average_local_clustering(const Graph& g) {
  const VertexId n = g.vertex_count();
  if (n == 0) return 0.0;
  double sum = 0.0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : sum)
  for (VertexId v = 0; v < n; ++v) {
    const auto adj = g.neighbors(v);
    const std::size_t d = adj.size();
    if (d < 2) continue;
    std::uint64_t links = 0;
    for (VertexId w : adj)
      links += intersect_size(adj, g.neighbors(w));
    // Each neighbor-pair edge is seen twice in the loop above.
    sum += static_cast<double>(links) / (static_cast<double>(d) * (d - 1));
  }
  return sum / static_cast<double>(n);
}

std::vector<std::uint64_t> degree_histogram(const Graph& g) {
  std::vector<std::uint64_t> histogram(g.max_degree() + 1, 0);
  for (VertexId v = 0; v < g.vertex_count(); ++v) histogram[g.degree(v)]++;
  return histogram;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source) {
  GRAPHPI_CHECK(source < g.vertex_count());
  std::vector<std::uint32_t> dist(g.vertex_count(),
                                  std::numeric_limits<std::uint32_t>::max());
  std::queue<VertexId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (VertexId w : g.neighbors(v))
      if (dist[w] == std::numeric_limits<std::uint32_t>::max()) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
  }
  return dist;
}

Graph relabel(const Graph& g, const std::vector<VertexId>& order) {
  const VertexId n = g.vertex_count();
  GRAPHPI_CHECK(order.size() == n);
  std::vector<VertexId> new_id(n, 0);
  for (VertexId i = 0; i < n; ++i) new_id[order[i]] = i;
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) b.add_edge(new_id[u], new_id[v]);
  return b.build();
}

Graph relabel_by_degree(const Graph& g) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&g](VertexId a, VertexId b) {
                     return g.degree(a) > g.degree(b);
                   });
  return relabel(g, order);
}

}  // namespace graphpi
