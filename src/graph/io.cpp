#include "graph/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "graph/builder.h"
#include "support/check.h"

namespace graphpi {

Graph read_edge_list(std::istream& in) {
  GraphBuilder b;
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto dense_id = [&remap](std::uint64_t raw) -> VertexId {
    auto [it, inserted] =
        remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    return it->second;
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u_raw = 0, v_raw = 0;
    if (!(ls >> u_raw >> v_raw)) continue;  // skip malformed lines
    b.add_edge(dense_id(u_raw), dense_id(v_raw));
  }
  return b.build();
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# GraphPi edge list: " << g.vertex_count() << " vertices, "
      << g.edge_count() << " edges\n";
  for (VertexId u = 0; u < g.vertex_count(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) out << u << ' ' << v << '\n';
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write edge list: " + path);
  write_edge_list(g, out);
}

namespace {
constexpr char kMagic[4] = {'G', 'P', 'I', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
}
}  // namespace

void save_binary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write binary graph: " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t n = g.vertex_count();
  const std::uint64_t slots = g.directed_edge_count();
  write_pod(out, n);
  write_pod(out, slots);
  out.write(reinterpret_cast<const char*>(g.raw_offsets().data()),
            static_cast<std::streamsize>(g.raw_offsets().size() *
                                         sizeof(EdgeIndex)));
  out.write(reinterpret_cast<const char*>(g.raw_neighbors().data()),
            static_cast<std::streamsize>(g.raw_neighbors().size() *
                                         sizeof(VertexId)));
}

Graph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open binary graph: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string_view(magic, 4) != std::string_view(kMagic, 4))
    throw std::runtime_error("bad magic in binary graph: " + path);
  std::uint64_t n = 0, slots = 0;
  read_pod(in, n);
  read_pod(in, slots);
  std::vector<EdgeIndex> offsets(n + 1);
  std::vector<VertexId> neighbors(slots);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeIndex)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(VertexId)));
  if (!in) throw std::runtime_error("truncated binary graph: " + path);
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace graphpi
