// Subgraph extraction utilities.
//
// Induced subgraphs and ego networks are the standard way to zoom into a
// region of a data graph — e.g. extracting the neighborhood of a match
// reported by the engine, or building per-community test fixtures.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi {

/// Result of an extraction: the subgraph plus the mapping back to the
/// original vertex ids (new vertex i was original_ids[i]).
struct SubgraphResult {
  Graph graph;
  std::vector<VertexId> original_ids;
};

/// Induced subgraph on `vertices` (deduplicated; order defines the new
/// ids). Edges are kept iff both endpoints are selected.
[[nodiscard]] SubgraphResult induced_subgraph(
    const Graph& g, std::vector<VertexId> vertices);

/// Ego network: the induced subgraph on all vertices within `radius`
/// hops of `center` (center first in the id mapping).
[[nodiscard]] SubgraphResult ego_network(const Graph& g, VertexId center,
                                         int radius = 1);

/// Induced subgraph on the k-core (vertices with core number >= k).
[[nodiscard]] SubgraphResult k_core_subgraph(const Graph& g,
                                             std::uint32_t k);

/// Row-sliced CSR view: a graph over the SAME (global) vertex-id space as
/// `g` that keeps the full adjacency row of every vertex with
/// `keep[v] == true` and drops the rows of all others. Unlike
/// induced_subgraph, vertex ids are NOT remapped and kept rows are NOT
/// filtered — a kept row may reference dropped vertices. This is the
/// storage shape of one node's shard in the distributed runtime
/// (dist/shard.h): resident vertices carry their real adjacency, everyone
/// else carries nothing.
///
/// Dropped rows are empty by default; when `fill_dropped` is non-empty,
/// every dropped row is filled with that list instead (a deliberately
/// wrong "poison" adjacency — the shard-isolation tests use it to prove
/// an executor never reads non-resident rows). The result intentionally
/// violates Graph::validate()'s symmetry invariant whenever a kept row
/// references a dropped vertex; it is a storage view, not a standalone
/// graph.
[[nodiscard]] Graph csr_row_slice(const Graph& g, const std::vector<bool>& keep,
                                  std::span<const VertexId> fill_dropped = {});

}  // namespace graphpi
