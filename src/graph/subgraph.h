// Subgraph extraction utilities.
//
// Induced subgraphs and ego networks are the standard way to zoom into a
// region of a data graph — e.g. extracting the neighborhood of a match
// reported by the engine, or building per-community test fixtures.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi {

/// Result of an extraction: the subgraph plus the mapping back to the
/// original vertex ids (new vertex i was original_ids[i]).
struct SubgraphResult {
  Graph graph;
  std::vector<VertexId> original_ids;
};

/// Induced subgraph on `vertices` (deduplicated; order defines the new
/// ids). Edges are kept iff both endpoints are selected.
[[nodiscard]] SubgraphResult induced_subgraph(
    const Graph& g, std::vector<VertexId> vertices);

/// Ego network: the induced subgraph on all vertices within `radius`
/// hops of `center` (center first in the id mapping).
[[nodiscard]] SubgraphResult ego_network(const Graph& g, VertexId center,
                                         int radius = 1);

/// Induced subgraph on the k-core (vertices with core number >= k).
[[nodiscard]] SubgraphResult k_core_subgraph(const Graph& g,
                                             std::uint32_t k);

}  // namespace graphpi
