#include "graph/subgraph.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "graph/analysis.h"
#include "graph/builder.h"
#include "support/check.h"

namespace graphpi {

SubgraphResult induced_subgraph(const Graph& g,
                                std::vector<VertexId> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  for (VertexId v : vertices)
    GRAPHPI_CHECK_MSG(v < g.vertex_count(), "vertex out of range");

  std::unordered_map<VertexId, VertexId> new_id;
  new_id.reserve(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i)
    new_id.emplace(vertices[i], static_cast<VertexId>(i));

  GraphBuilder b(static_cast<VertexId>(vertices.size()));
  for (VertexId u : vertices)
    for (VertexId w : g.neighbors(u)) {
      if (u >= w) continue;  // each edge once
      const auto it = new_id.find(w);
      if (it != new_id.end()) b.add_edge(new_id.at(u), it->second);
    }
  return {b.build(), std::move(vertices)};
}

SubgraphResult ego_network(const Graph& g, VertexId center, int radius) {
  GRAPHPI_CHECK(center < g.vertex_count());
  GRAPHPI_CHECK(radius >= 0);
  std::vector<VertexId> selected{center};
  std::vector<int> dist(g.vertex_count(), -1);
  dist[center] = 0;
  std::queue<VertexId> frontier;
  frontier.push(center);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    if (dist[v] == radius) continue;
    for (VertexId w : g.neighbors(v))
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        selected.push_back(w);
        frontier.push(w);
      }
  }
  // Keep the center first, then ascending (induced_subgraph sorts; we
  // re-sort with the center pinned by swapping it to front afterwards).
  SubgraphResult result = induced_subgraph(g, std::move(selected));
  const auto it = std::find(result.original_ids.begin(),
                            result.original_ids.end(), center);
  const auto center_new =
      static_cast<VertexId>(it - result.original_ids.begin());
  (void)center_new;  // ids stay sorted; callers locate via original_ids
  return result;
}

SubgraphResult k_core_subgraph(const Graph& g, std::uint32_t k) {
  const CoreResult cores = core_decomposition(g);
  std::vector<VertexId> selected;
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (cores.core[v] >= k) selected.push_back(v);
  return induced_subgraph(g, std::move(selected));
}

Graph csr_row_slice(const Graph& g, const std::vector<bool>& keep,
                    std::span<const VertexId> fill_dropped) {
  const VertexId n = g.vertex_count();
  GRAPHPI_CHECK_MSG(keep.size() == n, "keep mask must cover every vertex");

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  EdgeIndex slots = 0;
  for (VertexId v = 0; v < n; ++v) {
    offsets[v] = slots;
    slots += keep[v] ? g.degree(v) : fill_dropped.size();
  }
  offsets[n] = slots;

  std::vector<VertexId> neighbors;
  neighbors.reserve(slots);
  for (VertexId v = 0; v < n; ++v) {
    if (keep[v]) {
      const auto adj = g.neighbors(v);
      neighbors.insert(neighbors.end(), adj.begin(), adj.end());
    } else {
      neighbors.insert(neighbors.end(), fill_dropped.begin(),
                       fill_dropped.end());
    }
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace graphpi
