// Deterministic random-graph generators.
//
// The evaluation graphs of the paper are public SNAP datasets, which are
// not available in this offline environment; DESIGN.md documents the
// substitution. These generators produce seeded synthetic graphs with
// controllable size, degree skew and clustering so that every experiment
// exercises the same code paths.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi {

/// G(n, m) Erdős–Rényi: m distinct undirected edges drawn uniformly.
[[nodiscard]] Graph erdos_renyi(VertexId n, std::uint64_t m,
                                std::uint64_t seed);

/// Chung–Lu power-law graph: expected degree of vertex i proportional to
/// (i + i0)^(-1/(alpha-1)) normalized to hit `target_edges` in expectation.
/// alpha is the exponent of the degree distribution (2 < alpha < 3 typical
/// of social networks).
[[nodiscard]] Graph power_law(VertexId n, std::uint64_t target_edges,
                              double alpha, std::uint64_t seed);

/// Power-law graph post-processed with `closure_rounds` triangle-closing
/// passes: for random length-2 paths a-b-c the edge (a,c) is added with
/// probability `closure_p`. Raises clustering so that tri_cnt (which the
/// perf model consumes) is non-trivial, as in real social graphs.
[[nodiscard]] Graph clustered_power_law(VertexId n, std::uint64_t target_edges,
                                        double alpha, double closure_p,
                                        std::uint64_t seed);

/// Complete graph K_n (used by Algorithm 1's restriction-set validation).
[[nodiscard]] Graph complete_graph(VertexId n);

/// Simple cycle C_n.
[[nodiscard]] Graph cycle_graph(VertexId n);

/// Star S_n: vertex 0 connected to 1..n-1.
[[nodiscard]] Graph star_graph(VertexId n);

/// Random d-regular-ish graph via d superimposed random near-perfect
/// matchings (degrees may differ slightly after dedup).
[[nodiscard]] Graph random_regular(VertexId n, std::uint32_t d,
                                   std::uint64_t seed);

/// Two-dimensional grid graph of rows x cols vertices.
[[nodiscard]] Graph grid_graph(VertexId rows, VertexId cols);

/// R-MAT (Chakrabarti et al.) recursive-matrix graph over 2^scale
/// vertices with ~`target_edges` undirected edges. Quadrant probabilities
/// (a, b, c) follow the Graph500 defaults (0.57, 0.19, 0.19) when left
/// unset; d = 1 - a - b - c. Produces the heavy-tailed hub structure the
/// hub-bitmap index and the skewed-intersection kernels are designed for.
[[nodiscard]] Graph rmat(std::uint32_t scale, std::uint64_t target_edges,
                         std::uint64_t seed, double a = 0.57, double b = 0.19,
                         double c = 0.19);

}  // namespace graphpi
