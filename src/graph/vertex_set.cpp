#include "graph/vertex_set.h"

#include <algorithm>

namespace graphpi {

void intersect(std::span<const VertexId> a, std::span<const VertexId> b,
               std::vector<VertexId>& out) {
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

std::size_t intersect_size(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

void intersect_below(std::span<const VertexId> a, std::span<const VertexId> b,
                     VertexId bound, std::vector<VertexId>& out) {
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] >= bound || b[j] >= bound) break;  // sorted: nothing below left
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

void intersect_gallop(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>& out) {
  out.clear();
  if (a.size() > b.size()) std::swap(a, b);
  const VertexId* lo = b.data();
  const VertexId* end = b.data() + b.size();
  for (VertexId x : a) {
    // Exponential probe forward from the last match position, then binary
    // search inside the located window.
    std::size_t step = 1;
    const VertexId* hi = lo;
    while (hi < end && *hi < x) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    if (hi > end) hi = end;
    lo = std::lower_bound(lo, hi, x);
    if (lo == end) break;
    if (*lo == x) out.push_back(x);
  }
}

void intersect_adaptive(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId>& out) {
  const std::size_t small = std::min(a.size(), b.size());
  const std::size_t large = std::max(a.size(), b.size());
  // Gallop wins once the size ratio exceeds ~32 (empirically; see
  // bench/micro_kernels).
  if (small != 0 && large / small >= 32) {
    intersect_gallop(a, b, out);
  } else {
    intersect(a, b, out);
  }
}

void remove_all(std::vector<VertexId>& s, std::span<const VertexId> excluded) {
  for (VertexId v : excluded) {
    auto it = std::lower_bound(s.begin(), s.end(), v);
    if (it != s.end() && *it == v) s.erase(it);
  }
}

std::size_t count_present(std::span<const VertexId> s,
                          std::span<const VertexId> values) {
  std::size_t n = 0;
  for (VertexId v : values)
    if (std::binary_search(s.begin(), s.end(), v)) ++n;
  return n;
}

bool contains(std::span<const VertexId> s, VertexId v) {
  return std::binary_search(s.begin(), s.end(), v);
}

std::size_t count_below(std::span<const VertexId> s, VertexId bound) {
  return static_cast<std::size_t>(
      std::lower_bound(s.begin(), s.end(), bound) - s.begin());
}

std::size_t count_above(std::span<const VertexId> s, VertexId bound) {
  return static_cast<std::size_t>(
      s.end() - std::upper_bound(s.begin(), s.end(), bound));
}

}  // namespace graphpi
