#include "graph/vertex_set.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

// Runtime dispatch: on x86 with GCC/Clang the vector kernels are compiled
// unconditionally via per-function target attributes, so even a portable
// baseline build (-DGRAPHPI_NATIVE=OFF) carries them and picks the best
// slot at load time with a cpuid probe.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define GRAPHPI_DISPATCH_X86 1
#include <immintrin.h>
#else
#define GRAPHPI_DISPATCH_X86 0
#endif

namespace graphpi {

// ---------------------------------------------------------------------------
// Scalar reference kernels.
// ---------------------------------------------------------------------------

void intersect_scalar(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>& out) {
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

std::size_t intersect_size_scalar(std::span<const VertexId> a,
                                  std::span<const VertexId> b) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

std::size_t varint_decode_u32_scalar(std::span<const std::uint8_t> in,
                                     std::size_t count, std::uint32_t* out) {
  const std::uint8_t* p = in.data();
  const std::uint8_t* const end = p + in.size();
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t v = 0;
    int shift = 0;
    while (true) {
      if (p == end) return kVarintMalformed;  // truncated mid-value
      const std::uint8_t b = *p++;
      // The 5th byte (shift 28) may only carry the top 4 bits of a u32,
      // and must terminate the value.
      if (shift == 28 && (b & 0xf0) != 0) return kVarintMalformed;
      v |= static_cast<std::uint32_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    out[i] = v;
  }
  return static_cast<std::size_t>(p - in.data());
}

namespace {

std::size_t intersect_into_scalar(std::span<const VertexId> a,
                                  std::span<const VertexId> b, VertexId* out) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out[n++] = a[i];
      ++i;
      ++j;
    }
  }
  return n;
}

std::size_t bitmap_and_popcount_scalar(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t words) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < words; ++w)
    n += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  return n;
}

#if GRAPHPI_DISPATCH_X86

// ---------------------------------------------------------------------------
// AVX2 kernels.
//
// Block-wise all-pairs intersection (Schlegel et al. / Lemire): compare an
// 8-lane block of `a` against all 8 rotations of an 8-lane block of `b`,
// OR the equality masks together, then advance whichever block exhausted
// its value range. Each block pair performs 64 comparisons in 8 vector
// compares + 7 lane rotations; the strictly-ascending-input invariant
// guarantees every element matches at most once, so the accumulated mask
// popcount is exactly the number of common elements in the block pair.
// ---------------------------------------------------------------------------

#define GRAPHPI_AVX2_FN __attribute__((target("avx2")))

/// Lane-rotation index vectors for _mm256_permutevar8x32_epi32.
GRAPHPI_AVX2_FN inline __m256i rotation(int r) {
  alignas(32) static const std::uint32_t kRot[8][8] = {
      {0, 1, 2, 3, 4, 5, 6, 7}, {1, 2, 3, 4, 5, 6, 7, 0},
      {2, 3, 4, 5, 6, 7, 0, 1}, {3, 4, 5, 6, 7, 0, 1, 2},
      {4, 5, 6, 7, 0, 1, 2, 3}, {5, 6, 7, 0, 1, 2, 3, 4},
      {6, 7, 0, 1, 2, 3, 4, 5}, {7, 0, 1, 2, 3, 4, 5, 6}};
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(kRot[r]));
}

/// 8-bit match mask of which lanes of block `va` occur anywhere in `vb`.
GRAPHPI_AVX2_FN inline unsigned block_match_mask(__m256i va, __m256i vb) {
  __m256i eq = _mm256_cmpeq_epi32(va, vb);
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(
                               va, _mm256_permutevar8x32_epi32(vb, rotation(1))));
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(
                               va, _mm256_permutevar8x32_epi32(vb, rotation(2))));
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(
                               va, _mm256_permutevar8x32_epi32(vb, rotation(3))));
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(
                               va, _mm256_permutevar8x32_epi32(vb, rotation(4))));
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(
                               va, _mm256_permutevar8x32_epi32(vb, rotation(5))));
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(
                               va, _mm256_permutevar8x32_epi32(vb, rotation(6))));
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(
                               va, _mm256_permutevar8x32_epi32(vb, rotation(7))));
  return static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

/// Left-pack shuffle indices: entry m lists, in order, the lanes whose bit
/// is set in the 8-bit mask m (remaining lanes arbitrary).
struct CompactTable {
  alignas(32) std::uint32_t idx[256][8];
  constexpr CompactTable() : idx{} {
    for (int m = 0; m < 256; ++m) {
      int out = 0;
      for (int lane = 0; lane < 8; ++lane)
        if ((m >> lane) & 1) idx[m][out++] = static_cast<std::uint32_t>(lane);
      for (; out < 8; ++out) idx[m][out] = 0;
    }
  }
};
constexpr CompactTable kCompact{};

GRAPHPI_AVX2_FN std::size_t intersect_size_avx2(std::span<const VertexId> a,
                                                std::span<const VertexId> b) {
  const std::size_t na = a.size(), nb = b.size();
  std::size_t i = 0, j = 0, n = 0;
  if (na >= 8 && nb >= 8) {
    const VertexId* pa = a.data();
    const VertexId* pb = b.data();
    while (i + 8 <= na && j + 8 <= nb) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + j));
      n += static_cast<std::size_t>(std::popcount(block_match_mask(va, vb)));
      const VertexId amax = pa[i + 7], bmax = pb[j + 7];
      if (amax <= bmax) i += 8;
      if (bmax <= amax) j += 8;
    }
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

GRAPHPI_AVX2_FN std::size_t intersect_into_avx2(std::span<const VertexId> a,
                                                std::span<const VertexId> b,
                                                VertexId* out) {
  const std::size_t na = a.size(), nb = b.size();
  // The caller provides min(na, nb) + 8 capacity: a block store writes a
  // full 8 lanes at the current match offset even when few are real
  // matches.
  VertexId* dst = out;
  std::size_t i = 0, j = 0;
  if (na >= 8 && nb >= 8) {
    const VertexId* pa = a.data();
    const VertexId* pb = b.data();
    while (i + 8 <= na && j + 8 <= nb) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + j));
      const unsigned mask = block_match_mask(va, vb);
      const __m256i shuffle = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompact.idx[mask]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                          _mm256_permutevar8x32_epi32(va, shuffle));
      dst += std::popcount(mask);
      const VertexId amax = pa[i + 7], bmax = pb[j + 7];
      if (amax <= bmax) i += 8;
      if (bmax <= amax) j += 8;
    }
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      *dst++ = a[i];
      ++i;
      ++j;
    }
  }
  return static_cast<std::size_t>(dst - out);
}

GRAPHPI_AVX2_FN std::size_t bitmap_and_popcount_avx2(const std::uint64_t* a,
                                                     const std::uint64_t* b,
                                                     std::size_t words) {
  std::size_t n = 0;
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp),
                       _mm256_and_si256(va, vb));
    n += static_cast<std::size_t>(std::popcount(tmp[0]) + std::popcount(tmp[1]) +
                                  std::popcount(tmp[2]) + std::popcount(tmp[3]));
  }
  for (; w < words; ++w) n += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  return n;
}

/// Widens 8 single-byte varints to 8 u32 lanes.
GRAPHPI_AVX2_FN inline void widen_singles_avx2(const std::uint8_t* p,
                                               std::uint32_t* out) {
  const __m128i b8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_cvtepu8_epi32(b8));
}

/// Decodes one multi-byte varint the scalar way; the vector loops call
/// this exactly at bytes whose continuation bit the movemask flagged.
/// Returns false on truncation/overflow; advances `p` past the value.
inline bool decode_one_varint(const std::uint8_t*& p, const std::uint8_t* end,
                              std::uint32_t& v) {
  v = 0;
  int shift = 0;
  while (true) {
    if (p == end) return false;
    const std::uint8_t b = *p++;
    if (shift == 28 && (b & 0xf0) != 0) return false;
    v |= static_cast<std::uint32_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return true;
    shift += 7;
  }
}

// Masked-VByte-style branchless decode for mixed windows. The 8-bit
// continuation mask of an 8-byte group indexes a precomputed pshufb
// control that expands its leading run of complete 1- and 2-byte
// varints into eight u16 lanes in one shuffle; a (b & 0x7F) | ((b >> 1)
// & 0x3F80) pair then strips the continuation bits. Values of >= 3
// bytes (vanishingly rare in the delta streams this decodes: a
// degree-ordered gap >= 16384) drop to the scalar one-value path. The
// table parse is greedy and stops early at byte 7 when a pair would
// straddle the group edge, so a shuffle never references a source byte
// past index 7 (offset +8 keeps every reference inside a 16-byte load).
struct VarintStepEntry {
  std::array<std::uint8_t, 16> shuf;  // pshufb control; 0x80 zeroes a lane
  std::uint8_t consumed;              // source bytes covered by the shuffle
  std::uint8_t produced;              // values expanded into u16 lanes
  std::uint8_t long_varint;           // a >= 3-byte value cut the parse short
};

consteval std::array<VarintStepEntry, 256> make_varint_step_table() {
  std::array<VarintStepEntry, 256> table{};
  for (unsigned m = 0; m < 256; ++m) {
    VarintStepEntry& e = table[m];
    e.shuf.fill(0x80);
    unsigned pos = 0;
    unsigned n = 0;
    while (pos < 8) {
      if ((m >> pos & 1u) == 0) {  // terminator first: a 1-byte value
        e.shuf[2 * n] = static_cast<std::uint8_t>(pos);
        pos += 1;
        ++n;
      } else if (pos == 7) {
        break;  // pair would straddle the group edge; next step resumes
      } else if ((m >> (pos + 1) & 1u) == 0) {  // continuation+terminator
        e.shuf[2 * n] = static_cast<std::uint8_t>(pos);
        e.shuf[2 * n + 1] = static_cast<std::uint8_t>(pos + 1);
        pos += 2;
        ++n;
      } else {  // two continuation bytes: a >= 3-byte value starts here
        e.long_varint = 1;
        break;
      }
    }
    e.consumed = static_cast<std::uint8_t>(pos);
    e.produced = static_cast<std::uint8_t>(n);
  }
  return table;
}

alignas(64) constexpr std::array<VarintStepEntry, 256> kVarintStepTable =
    make_varint_step_table();

/// One table-driven step: expand the masked group at `p + offset` of the
/// 16 bytes in `raw` and store up to 8 u32 values at `dst`. Lanes past
/// `produced` store zero and are overwritten by the caller's next step.
GRAPHPI_AVX2_FN inline const VarintStepEntry& varint_lut_step(
    __m128i raw, unsigned mask8, unsigned offset, std::uint32_t* dst) {
  const VarintStepEntry& e = kVarintStepTable[mask8];
  const __m128i ctrl = _mm_add_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(e.shuf.data())),
      _mm_set1_epi8(static_cast<char>(offset)));
  const __m128i packed = _mm_shuffle_epi8(raw, ctrl);
  const __m128i v16 = _mm_or_si128(
      _mm_and_si128(packed, _mm_set1_epi16(0x007F)),
      _mm_srli_epi16(_mm_and_si128(packed, _mm_set1_epi16(0x7F00)), 1));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                      _mm256_cvtepu16_epi32(v16));
  return e;
}

GRAPHPI_AVX2_FN std::size_t varint_decode_u32_avx2(
    std::span<const std::uint8_t> in, std::size_t count, std::uint32_t* out) {
  const std::uint8_t* p = in.data();
  const std::uint8_t* const end = p + in.size();
  std::size_t i = 0;
  while (i + 16 <= count && end - p >= 16) {
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const auto mask =
        static_cast<std::uint32_t>(_mm_movemask_epi8(raw)) & 0xFFFFu;
    if (mask == 0) {
      // 16 continuation-free bytes = 16 complete values: widen and store.
      widen_singles_avx2(p, out + i);
      widen_singles_avx2(p + 8, out + i + 8);
      p += 16;
      i += 16;
      continue;
    }
    // Two 8-byte LUT groups per load. Both steps together produce at
    // most 16 values (a long-varint stop caps its group at 7 + 1), so
    // the loop bound keeps every 8-lane store inside `out[0, count)`.
    unsigned off = 0;
    for (int step = 0; step < 2; ++step) {
      const VarintStepEntry& e =
          varint_lut_step(raw, (mask >> off) & 0xFFu, off, out + i);
      i += e.produced;
      off += e.consumed;
      if (e.long_varint) {
        const std::uint8_t* q = p + off;
        std::uint32_t v = 0;
        if (!decode_one_varint(q, end, v)) return kVarintMalformed;
        out[i++] = v;
        off = static_cast<unsigned>(q - p);
        break;  // the scalar value may run past the loaded window
      }
    }
    p += off;
  }
  const std::size_t tail = varint_decode_u32_scalar(
      {p, static_cast<std::size_t>(end - p)}, count - i, out + i);
  if (tail == kVarintMalformed) return kVarintMalformed;
  return static_cast<std::size_t>(p - in.data()) + tail;
}

// ---------------------------------------------------------------------------
// AVX-512 kernels (VBMI2 + VPOPCNTDQ tier).
//
// Measured design, not maximal width. Block-wise all-pairs matching does
// B*B comparisons to consume >= B elements, so doubling the block width
// to 16 lanes doubles the comparisons per element — and on the cores
// this tier targets (Ice Lake+) every cross-lane shuffle AND every
// compare-into-mask issues on port 5, so the 512-bit variant measures
// ~1.7x SLOWER than the AVX2 scheme, whose legacy-encoded compares
// spread across three ports (bench/micro_kernels; see also the variant
// study in this PR). The tier therefore keeps the AVX2 8-lane match
// core and upgrades the two places the wider ISA actually wins:
//
//   * intersect_into retires matches with a VBMI2-family masked
//     compress-store (`vpcompressd`) straight from the match mask,
//     writing exactly popcount(mask) lanes — the 8 KB left-pack shuffle
//     table drops out of the hot loop's cache footprint;
//   * bitmap_and_popcount uses VPOPCNTDQ (`vpopcntq`) with an in-vector
//     accumulator, ~1.9x the AVX2 extract-and-scalar-popcount loop.
//
// intersect_size has no retire step, so its table slot reuses the AVX2
// kernel unchanged.
// ---------------------------------------------------------------------------

// "avx2" is included so the AVX2 match helpers inline into these
// functions (GCC only inlines across target attributes into a superset).
#define GRAPHPI_AVX512_FN                                              \
  __attribute__((target(                                               \
      "avx2,avx512f,avx512bw,avx512vl,avx512vbmi2,avx512vpopcntdq")))

// GCC's _mm512_reduce_add_epi64 builds its shuffle tree from an
// "undefined" source via the `__T __Y = __Y;` self-init idiom, which
// -Wall flags as uninitialized when inlined here. False positive;
// silence it for the AVX-512 kernel block only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

GRAPHPI_AVX512_FN std::size_t intersect_into_avx512(
    std::span<const VertexId> a, std::span<const VertexId> b, VertexId* out) {
  const std::size_t na = a.size(), nb = b.size();
  VertexId* dst = out;
  std::size_t i = 0, j = 0;
  if (na >= 8 && nb >= 8) {
    const VertexId* pa = a.data();
    const VertexId* pb = b.data();
    while (i + 8 <= na && j + 8 <= nb) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + j));
      const unsigned mask = block_match_mask(va, vb);
      // Compress-store retire: the matched lanes of va, already
      // ascending, land contiguously at dst — exactly popcount(mask)
      // lanes written, no table lookup, no block-store slack (the +8
      // capacity contract is kept for slot interchangeability).
      _mm256_mask_compressstoreu_epi32(dst, static_cast<__mmask8>(mask),
                                       va);
      dst += std::popcount(mask);
      const VertexId amax = pa[i + 7], bmax = pb[j + 7];
      if (amax <= bmax) i += 8;
      if (bmax <= amax) j += 8;
    }
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      *dst++ = a[i];
      ++i;
      ++j;
    }
  }
  return static_cast<std::size_t>(dst - out);
}

GRAPHPI_AVX512_FN std::size_t bitmap_and_popcount_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  std::size_t w = 0;
  __m512i acc = _mm512_setzero_si512();
  for (; w + 8 <= words; w += 8) {
    const __m512i conj = _mm512_and_si512(_mm512_loadu_si512(a + w),
                                          _mm512_loadu_si512(b + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(conj));
  }
  std::size_t n =
      static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < words; ++w)
    n += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  return n;
}

GRAPHPI_AVX512_FN std::size_t varint_decode_u32_avx512(
    std::span<const std::uint8_t> in, std::size_t count, std::uint32_t* out) {
  // 64-byte continuation probe (one movepi8_mask), 16-lane widening
  // stores while the stream stays single-byte; the first continuation
  // byte hands off to the AVX2 kernel's masked-LUT mixed loop.
  const std::uint8_t* p = in.data();
  const std::uint8_t* const end = p + in.size();
  std::size_t i = 0;
  while (i + 64 <= count && end - p >= 64) {
    const __m512i bytes = _mm512_loadu_si512(p);
    const __mmask64 cont = _mm512_movepi8_mask(bytes);
    if (cont == 0) {
      for (int k = 0; k < 64; k += 16) {
        const __m128i b16 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + k));
        _mm512_storeu_si512(out + i + k, _mm512_cvtepu8_epi32(b16));
      }
      p += 64;
      i += 64;
      continue;
    }
    // First continuation byte seen: hand the rest of the stream to the
    // AVX2 kernel's masked-LUT loop below, which is the measured best
    // scheme for mixed 1-/2-byte varint data (the 512-bit win here is
    // the all-singles sweep, 64 values per mask probe).
    break;
  }
  const std::size_t tail = varint_decode_u32_avx2(
      {p, static_cast<std::size_t>(end - p)}, count - i, out + i);
  if (tail == kVarintMalformed) return kVarintMalformed;
  return static_cast<std::size_t>(p - in.data()) + tail;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // GRAPHPI_DISPATCH_X86

// ---------------------------------------------------------------------------
// Kernel table + runtime selection.
// ---------------------------------------------------------------------------

struct KernelTable {
  const char* name;
  KernelIsa isa;
  std::size_t (*intersect_size)(std::span<const VertexId>,
                                std::span<const VertexId>);
  std::size_t (*intersect_into)(std::span<const VertexId>,
                                std::span<const VertexId>, VertexId*);
  std::size_t (*bitmap_and_popcount)(const std::uint64_t*,
                                     const std::uint64_t*, std::size_t);
  std::size_t (*varint_decode)(std::span<const std::uint8_t>, std::size_t,
                               std::uint32_t*);
};

constexpr KernelTable kScalarTable{"scalar", KernelIsa::kScalar,
                                   &intersect_size_scalar,
                                   &intersect_into_scalar,
                                   &bitmap_and_popcount_scalar,
                                   &varint_decode_u32_scalar};

#if GRAPHPI_DISPATCH_X86
constexpr KernelTable kAvx2Table{"avx2", KernelIsa::kAvx2,
                                 &intersect_size_avx2, &intersect_into_avx2,
                                 &bitmap_and_popcount_avx2,
                                 &varint_decode_u32_avx2};
constexpr KernelTable kAvx512Table{"avx512", KernelIsa::kAvx512,
                                   &intersect_size_avx2,
                                   &intersect_into_avx512,
                                   &bitmap_and_popcount_avx512,
                                   &varint_decode_u32_avx512};
#endif

bool probe_cpu(KernelIsa isa) noexcept {
#if GRAPHPI_DISPATCH_X86
  __builtin_cpu_init();
  switch (isa) {
    case KernelIsa::kAuto:
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelIsa::kAvx512:
      // The kernels use the VBMI2 compress-store family plus VPOPCNTDQ
      // (both Ice Lake+), and build on the AVX2 match core.
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512vbmi2") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
  return false;
#else
  return isa == KernelIsa::kAuto || isa == KernelIsa::kScalar;
#endif
}

/// Best populated slot the CPU supports, before any override.
const KernelTable& probed_best_table() noexcept {
#if GRAPHPI_DISPATCH_X86
  static const KernelTable* best = probe_cpu(KernelIsa::kAvx512)
                                       ? &kAvx512Table
                                   : probe_cpu(KernelIsa::kAvx2)
                                       ? &kAvx2Table
                                       : &kScalarTable;
  return *best;
#else
  return kScalarTable;
#endif
}

/// What kAuto resolves to: the probed best, unless GRAPHPI_KERNEL_ISA pins
/// the initial selection ("scalar" | "avx2" | "avx512" | "auto"; unknown
/// values and unsupported requests fall back to the probed best).
const KernelTable& default_table() noexcept {
  static const KernelTable* chosen = [] {
    const char* env = std::getenv("GRAPHPI_KERNEL_ISA");
    if (env != nullptr) {
      if (std::strcmp(env, "scalar") == 0) return &kScalarTable;
#if GRAPHPI_DISPATCH_X86
      if (std::strcmp(env, "avx2") == 0 && probe_cpu(KernelIsa::kAvx2))
        return &kAvx2Table;
      if (std::strcmp(env, "avx512") == 0 && probe_cpu(KernelIsa::kAvx512))
        return &kAvx512Table;
#endif
    }
    return &probed_best_table();
  }();
  return *chosen;
}

/// Active table pointer. Unsynchronized by design (documented contract:
/// switch only while no matcher runs); a torn read is impossible for a
/// single pointer on the supported platforms.
const KernelTable* g_active = nullptr;

inline const KernelTable& table() noexcept {
  const KernelTable* t = g_active;
  if (t == nullptr) {
    t = &default_table();
    g_active = t;
  }
  return *t;
}

}  // namespace

const char* to_string(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::kAuto: return "auto";
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx512: return "avx512";
  }
  return "?";
}

bool cpu_supports(KernelIsa isa) noexcept { return probe_cpu(isa); }

KernelIsa active_kernel_isa() noexcept { return table().isa; }

const char* active_isa() noexcept { return table().name; }

const char* detected_isa() noexcept { return probed_best_table().name; }

bool select_kernel_isa(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::kAuto:
      g_active = &default_table();
      return true;
    case KernelIsa::kScalar:
      g_active = &kScalarTable;
      return true;
    case KernelIsa::kAvx2:
#if GRAPHPI_DISPATCH_X86
      if (probe_cpu(KernelIsa::kAvx2)) {
        g_active = &kAvx2Table;
        return true;
      }
#endif
      return false;
    case KernelIsa::kAvx512:
#if GRAPHPI_DISPATCH_X86
      if (probe_cpu(KernelIsa::kAvx512)) {
        g_active = &kAvx512Table;
        return true;
      }
#endif
      return false;
  }
  return false;
}

const char* simd_backend() noexcept { return active_isa(); }

bool simd_enabled() noexcept {
  return active_kernel_isa() != KernelIsa::kScalar;
}

void force_scalar_kernels(bool on) noexcept {
  select_kernel_isa(on ? KernelIsa::kScalar : KernelIsa::kAuto);
}

bool scalar_kernels_forced() noexcept {
  return active_kernel_isa() == KernelIsa::kScalar &&
         default_table().isa != KernelIsa::kScalar;
}

// ---------------------------------------------------------------------------
// Dispatching entry points.
// ---------------------------------------------------------------------------

std::size_t intersect_into(std::span<const VertexId> a,
                           std::span<const VertexId> b, VertexId* out) {
  return table().intersect_into(a, b, out);
}

std::size_t intersect_size(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  return table().intersect_size(a, b);
}

void intersect(std::span<const VertexId> a, std::span<const VertexId> b,
               std::vector<VertexId>& out) {
  // Headroom for the vector slot's block stores. Grow only — resize past
  // the previous (smaller) result value-initializes the gap, so never
  // pre-shrink a reused buffer.
  const std::size_t need = std::min(a.size(), b.size()) + 8;
  if (out.size() < need) out.resize(need);
  out.resize(table().intersect_into(a, b, out.data()));
}

std::size_t bitmap_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  return table().bitmap_and_popcount(a, b, words);
}

std::size_t varint_decode_u32(std::span<const std::uint8_t> in,
                              std::size_t count, std::uint32_t* out) {
  return table().varint_decode(in, count, out);
}

// ---------------------------------------------------------------------------
// Bounded / galloping / adaptive variants (built on the kernels above).
// ---------------------------------------------------------------------------

std::span<const VertexId> trim_to_window(std::span<const VertexId> s,
                                         VertexId lo_inclusive,
                                         VertexId hi_exclusive) {
  const VertexId* first = s.data();
  const VertexId* last = s.data() + s.size();
  if (lo_inclusive > 0) first = std::lower_bound(first, last, lo_inclusive);
  if (hi_exclusive != kNoVertexBound)
    last = std::lower_bound(first, last, hi_exclusive);
  return {first, last};
}

std::size_t intersect_size_bounded(std::span<const VertexId> a,
                                   std::span<const VertexId> b,
                                   VertexId lo_inclusive,
                                   VertexId hi_exclusive) {
  return intersect_size(trim_to_window(a, lo_inclusive, hi_exclusive),
                        trim_to_window(b, lo_inclusive, hi_exclusive));
}

void intersect_below(std::span<const VertexId> a, std::span<const VertexId> b,
                     VertexId bound, std::vector<VertexId>& out) {
  intersect(trim_to_window(a, 0, bound), trim_to_window(b, 0, bound), out);
}

void intersect_gallop(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>& out) {
  out.clear();
  if (a.size() > b.size()) std::swap(a, b);
  const std::size_t nb = b.size();
  std::size_t lo = 0;
  for (VertexId x : a) {
    // Exponential probe forward from the last match position, then binary
    // search inside the located window. Probe indices are clamped to nb
    // before any dereference or pointer formation (past-the-end arithmetic
    // is UB even without a dereference).
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < nb && b[hi] < x) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    if (hi > nb) hi = nb;
    lo = static_cast<std::size_t>(
        std::lower_bound(b.begin() + static_cast<std::ptrdiff_t>(lo),
                         b.begin() + static_cast<std::ptrdiff_t>(hi), x) -
        b.begin());
    if (lo == nb) break;
    if (b[lo] == x) out.push_back(x);
  }
}

std::size_t intersect_size_gallop(std::span<const VertexId> a,
                                  std::span<const VertexId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  const std::size_t nb = b.size();
  std::size_t lo = 0, n = 0;
  for (VertexId x : a) {
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < nb && b[hi] < x) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    if (hi > nb) hi = nb;
    lo = static_cast<std::size_t>(
        std::lower_bound(b.begin() + static_cast<std::ptrdiff_t>(lo),
                         b.begin() + static_cast<std::ptrdiff_t>(hi), x) -
        b.begin());
    if (lo == nb) break;
    if (b[lo] == x) ++n;
  }
  return n;
}

namespace {
/// Gallop wins once the size ratio exceeds ~32 (empirically; see
/// bench/micro_kernels).
constexpr std::size_t kGallopRatio = 32;

inline bool prefer_gallop(std::size_t na, std::size_t nb) {
  const std::size_t small = std::min(na, nb);
  const std::size_t large = std::max(na, nb);
  return small != 0 && large / small >= kGallopRatio;
}
}  // namespace

void intersect_adaptive(std::span<const VertexId> a,
                        std::span<const VertexId> b,
                        std::vector<VertexId>& out) {
  if (prefer_gallop(a.size(), b.size())) {
    intersect_gallop(a, b, out);
  } else {
    intersect(a, b, out);
  }
}

std::size_t intersect_size_adaptive(std::span<const VertexId> a,
                                    std::span<const VertexId> b) {
  if (prefer_gallop(a.size(), b.size())) return intersect_size_gallop(a, b);
  return intersect_size(a, b);
}

std::size_t intersect_size_bounded_adaptive(std::span<const VertexId> a,
                                            std::span<const VertexId> b,
                                            VertexId lo_inclusive,
                                            VertexId hi_exclusive) {
  return intersect_size_adaptive(trim_to_window(a, lo_inclusive, hi_exclusive),
                                 trim_to_window(b, lo_inclusive, hi_exclusive));
}

// ---------------------------------------------------------------------------
// Bitmap kernels.
// ---------------------------------------------------------------------------

namespace {
inline std::size_t bit_probe(const std::uint64_t* bits, VertexId v) {
  return static_cast<std::size_t>((bits[v >> 6] >> (v & 63)) & 1u);
}
}  // namespace

void intersect_bitmap(std::span<const VertexId> a, const std::uint64_t* bits,
                      std::vector<VertexId>& out) {
  out.clear();
  for (VertexId v : a)
    if (bit_probe(bits, v) != 0) out.push_back(v);
}

std::size_t intersect_bitmap_into(std::span<const VertexId> a,
                                  const std::uint64_t* bits, VertexId* out) {
  std::size_t n = 0;
  for (VertexId v : a)
    if (bit_probe(bits, v) != 0) out[n++] = v;
  return n;
}

std::size_t intersect_size_bitmap(std::span<const VertexId> a,
                                  const std::uint64_t* bits) {
  std::size_t n = 0;
  for (VertexId v : a) n += bit_probe(bits, v);
  return n;
}

std::size_t intersect_size_bitmap_bounded(std::span<const VertexId> a,
                                          const std::uint64_t* bits,
                                          VertexId lo_inclusive,
                                          VertexId hi_exclusive) {
  return intersect_size_bitmap(trim_to_window(a, lo_inclusive, hi_exclusive),
                               bits);
}

std::size_t bitmap_and_popcount_bounded(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        VertexId universe,
                                        VertexId lo_inclusive,
                                        VertexId hi_exclusive) {
  const std::uint64_t lo64 = lo_inclusive;
  const std::uint64_t hi64 =
      std::min<std::uint64_t>(hi_exclusive, universe);
  if (lo64 >= hi64) return 0;
  const std::size_t first_word = static_cast<std::size_t>(lo64 >> 6);
  const std::size_t last_word = static_cast<std::size_t>((hi64 - 1) >> 6);
  // Masks select bits >= lo in the first word and < hi in the last.
  const std::uint64_t lo_mask = ~std::uint64_t{0} << (lo64 & 63);
  const std::uint64_t hi_mask =
      (hi64 & 63) == 0 ? ~std::uint64_t{0}
                       : (~std::uint64_t{0} >> (64 - (hi64 & 63)));
  if (first_word == last_word) {
    return static_cast<std::size_t>(
        std::popcount(a[first_word] & b[first_word] & lo_mask & hi_mask));
  }
  std::size_t n = static_cast<std::size_t>(
      std::popcount(a[first_word] & b[first_word] & lo_mask));
  n += bitmap_and_popcount(a + first_word + 1, b + first_word + 1,
                           last_word - first_word - 1);
  n += static_cast<std::size_t>(
      std::popcount(a[last_word] & b[last_word] & hi_mask));
  return n;
}

// ---------------------------------------------------------------------------
// Small-set helpers.
// ---------------------------------------------------------------------------

void remove_all(std::vector<VertexId>& s, std::span<const VertexId> excluded) {
  for (VertexId v : excluded) {
    auto it = std::lower_bound(s.begin(), s.end(), v);
    if (it != s.end() && *it == v) s.erase(it);
  }
}

std::size_t count_present(std::span<const VertexId> s,
                          std::span<const VertexId> values) {
  std::size_t n = 0;
  for (VertexId v : values)
    if (std::binary_search(s.begin(), s.end(), v)) ++n;
  return n;
}

bool contains(std::span<const VertexId> s, VertexId v) {
  return std::binary_search(s.begin(), s.end(), v);
}

std::size_t count_below(std::span<const VertexId> s, VertexId bound) {
  return static_cast<std::size_t>(
      std::lower_bound(s.begin(), s.end(), bound) - s.begin());
}

std::size_t count_above(std::span<const VertexId> s, VertexId bound) {
  return static_cast<std::size_t>(
      s.end() - std::upper_bound(s.begin(), s.end(), bound));
}

}  // namespace graphpi
