#include "graph/builder.h"

#include <algorithm>

#include "support/check.h"

namespace graphpi {

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u == v) return;  // simple graphs only
  n_ = std::max(n_, std::max(u, v) + 1);
  edges_.emplace_back(u, v);
}

void GraphBuilder::add_edges(
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (auto [u, v] : edges) add_edge(u, v);
}

Graph GraphBuilder::build() {
  // Symmetrize: materialize both directions, then sort and deduplicate per
  // source using a single global sort of (src, dst) pairs.
  std::vector<std::pair<VertexId, VertexId>> directed;
  directed.reserve(edges_.size() * 2);
  for (auto [u, v] : edges_) {
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (auto [u, v] : directed) offsets[u + 1]++;
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> neighbors;
  neighbors.reserve(directed.size());
  for (auto [u, v] : directed) neighbors.push_back(v);

  edges_.clear();
  const VertexId n = n_;
  n_ = 0;
  GRAPHPI_CHECK(offsets.size() == static_cast<std::size_t>(n) + 1);
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph make_graph(VertexId n_vertices,
                 const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder b(n_vertices);
  b.add_edges(edges);
  return b.build();
}

}  // namespace graphpi
