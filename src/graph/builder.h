// Incremental construction of CSR graphs from edge lists.
//
// The builder accepts arbitrary (possibly duplicated, possibly self-looped,
// possibly one-directional) edge input — the forms found in raw SNAP edge
// lists — and produces a Graph satisfying all CSR invariants: symmetric,
// deduplicated, loop-free, sorted adjacency.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace graphpi {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares the number of vertices. Vertices mentioned by add_edge
  /// beyond this grow the graph automatically.
  explicit GraphBuilder(VertexId n_vertices) : n_(n_vertices) {}

  /// Records an undirected edge; self loops are dropped silently (the
  /// pattern-matching semantics of the paper are simple graphs).
  void add_edge(VertexId u, VertexId v);

  /// Bulk variant of add_edge.
  void add_edges(const std::vector<std::pair<VertexId, VertexId>>& edges);

  [[nodiscard]] VertexId current_vertex_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t pending_edge_count() const noexcept {
    return edges_.size();
  }

  /// Finalizes into an immutable CSR graph. The builder is left empty and
  /// reusable.
  [[nodiscard]] Graph build();

 private:
  VertexId n_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

/// Convenience: builds a graph directly from an edge list.
[[nodiscard]] Graph make_graph(
    VertexId n_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges);

}  // namespace graphpi
