#include "api/graphpi.h"

#include <algorithm>

#include "core/automorphism.h"
#include "engine/forest.h"
#include "engine/jit.h"
#include "support/check.h"
#include "support/timer.h"

namespace graphpi {

namespace {

/// Span name for one public counting call on a given backend.
const char* backend_span_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kSerial: return "count.serial";
    case Backend::kParallel: return "count.parallel";
    case Backend::kGenerated: return "count.generated";
    case Backend::kDistributed: return "count.distributed";
  }
  return "count";
}

/// Records one public counting call's wall time in api.count_ms.
class CountTimer {
 public:
  CountTimer() = default;
  ~CountTimer() {
    if (support::metrics::enabled())
      support::metrics::metric_histogram("api.count_ms")
          .observe(timer_.elapsed_millis());
  }
  CountTimer(const CountTimer&) = delete;
  CountTimer& operator=(const CountTimer&) = delete;

 private:
  support::Timer timer_;
};

/// Applies MatchOptions::kernels for the duration of one public call and
/// restores the previous dispatch selection after (no-op for kAuto).
class ScopedIsa {
 public:
  explicit ScopedIsa(KernelIsa want)
      : prev_(active_kernel_isa()),
        applied_(want != KernelIsa::kAuto && want != prev_ &&
                 select_kernel_isa(want)) {}
  ~ScopedIsa() {
    if (applied_) select_kernel_isa(prev_);
  }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  KernelIsa prev_;
  bool applied_;
};

/// Builds the call's ExecControl from the bounded-execution options. The
/// deadline is armed here — i.e. when execution starts, after planning.
support::ExecControl make_control(const MatchOptions& options) {
  support::ExecControl control;
  if (options.timeout_ms > 0.0) control.arm_deadline_ms(options.timeout_ms);
  if (options.cancel != nullptr) control.set_cancel_flag(options.cancel);
  if (options.work_budget != 0) control.set_root_budget(options.work_budget);
  if (options.poll_stride != 0) control.set_poll_stride(options.poll_stride);
  return control;
}

}  // namespace

GraphPi::GraphPi(const Graph& graph)
    : graph_(&graph), stats_(GraphStats::of(graph)) {}

Configuration GraphPi::plan(const Pattern& pattern,
                            const MatchOptions& options,
                            PlanningStats* diag) const {
  PlannerOptions planner;
  planner.use_iep = options.use_iep;
  planner.max_restriction_sets = options.max_restriction_sets;
  Configuration config = plan_configuration(pattern, stats_, planner, diag);
  if (options.empirical_validation) {
    GRAPHPI_CHECK_MSG(empirically_validate(config),
                      "planned configuration failed empirical validation");
  }
  return config;
}

Count GraphPi::count(const Pattern& pattern, const MatchOptions& options,
                     support::RunReport* report) const {
  return count(plan(pattern, options), options, report);
}

support::metrics::Snapshot GraphPi::metrics_snapshot() {
  return support::metrics::Registry::instance().snapshot();
}

Count GraphPi::count(const Configuration& config, const MatchOptions& options,
                     support::RunReport* report) const {
  const support::trace::ScopedSink sink(options.trace_sink);
  const support::trace::Span span(backend_span_name(options.backend));
  const CountTimer count_timer;
  const ScopedIsa isa(options.kernels);
  const support::ExecControl control = make_control(options);
  const support::ExecControl* ctl = control.armed() ? &control : nullptr;
  if (report != nullptr) *report = support::RunReport{};
  switch (options.backend) {
    case Backend::kSerial: {
      const Matcher matcher(*graph_, config);
      if (ctl == nullptr && report == nullptr) return matcher.count();
      Matcher::Workspace ws;
      return matcher.count(ws, ctl, report);
    }
    case Backend::kGenerated: {
      // One-plan forest through the kernel cache; interpreter fallback
      // when no system compiler is available (or the build failed).
      const PlanForest forest({compile_plan(config)});
      if (const auto counts =
              jit::run_generated(*graph_, forest, options.threads, ctl, report))
        return counts->front();
      const Matcher matcher(*graph_, config);
      if (ctl == nullptr && report == nullptr) return matcher.count();
      Matcher::Workspace ws;
      return matcher.count(ws, ctl, report);
    }
    case Backend::kParallel: {
      ParallelOptions popt;
      popt.task_depth = options.task_depth;
      popt.num_threads = options.threads;
      return count_parallel(*graph_, config, popt, nullptr, ctl, report);
    }
    case Backend::kDistributed: {
      dist::ClusterOptions copt;
      copt.nodes = options.nodes;
      copt.task_depth = options.task_depth;
      copt.partition = options.partition;
      copt.faults = options.faults;
      copt.control = ctl;
      copt.exec = options.dist_exec;
      copt.workers_per_node = options.dist_workers;
      copt.mailbox_capacity = options.dist_mailbox_capacity;
      return dist::distributed_count(*graph_, config, copt,
                                     options.cluster_stats, report);
    }
  }
  GRAPHPI_CHECK_MSG(false, "unknown backend");
  return 0;
}

PlanForest GraphPi::plan_batch(std::span<const Pattern> patterns,
                               const MatchOptions& options) const {
  std::vector<Plan> plans;
  plans.reserve(patterns.size());
  for (const Pattern& p : patterns) {
    GRAPHPI_CHECK_MSG(p.size() >= 2,
                      "count_batch requires patterns with >= 2 vertices");
    plans.push_back(compile_plan(plan(p, options)));
  }
  return PlanForest(std::move(plans));
}

std::vector<Count> GraphPi::count_batch(const PlanForest& forest,
                                        const MatchOptions& options,
                                        support::RunReport* report) const {
  const support::ExecControl control = make_control(options);
  return count_batch_impl(forest, options,
                          control.armed() ? &control : nullptr, report);
}

std::vector<Count> GraphPi::count_batch_impl(
    const PlanForest& forest, const MatchOptions& options,
    const support::ExecControl* control, support::RunReport* report) const {
  const support::trace::ScopedSink sink(options.trace_sink);
  const support::trace::Span span(backend_span_name(options.backend));
  const CountTimer count_timer;
  const ScopedIsa isa(options.kernels);
  const support::ExecControl* ctl =
      control != nullptr && control->armed() ? control : nullptr;
  if (report != nullptr) *report = support::RunReport{};
  if (options.backend == Backend::kGenerated) {
    if (auto counts =
            jit::run_generated(*graph_, forest, options.threads, ctl, report))
      return *counts;
  }
  if (options.backend == Backend::kDistributed) {
    dist::ClusterOptions copt;
    copt.nodes = options.nodes;
    copt.task_depth = options.task_depth;
    copt.partition = options.partition;
    copt.faults = options.faults;
    copt.control = ctl;
    copt.exec = options.dist_exec;
    copt.workers_per_node = options.dist_workers;
    copt.mailbox_capacity = options.dist_mailbox_capacity;
    return dist::distributed_count_batch(*graph_, forest, copt,
                                         options.cluster_stats, report);
  }
  if (options.backend == Backend::kParallel) {
    ParallelOptions popt;
    popt.num_threads = options.threads;
    return count_batch_parallel(*graph_, forest, popt, nullptr, ctl, report);
  }
  // Serial (and the generated backend's interpreter fallback).
  const ForestExecutor executor(*graph_, forest);
  if (ctl == nullptr && report == nullptr) return executor.count();
  std::vector<VertexId> roots(
      static_cast<std::size_t>(graph_->vertex_count()));
  for (std::size_t i = 0; i < roots.size(); ++i)
    roots[i] = static_cast<VertexId>(i);
  ForestExecutor::Workspace ws;
  return executor.count_roots(ws, roots, ctl, report);
}

std::vector<Count> GraphPi::count_batch(std::span<const Pattern> patterns,
                                        const MatchOptions& options,
                                        support::RunReport* report) const {
  if (report != nullptr) *report = support::RunReport{};
  if (patterns.empty()) return {};
  // One forest per kMaxPlans chunk (the active-plan mask is 64 bits wide).
  // Like every public entry point, a stats out-param describes THIS call
  // only: it is reset here and the chunks accumulate into it. Bounded
  // execution likewise spans the call: ONE control is armed here and
  // shared by every chunk, so timeout_ms bounds the whole batch.
  if (options.cluster_stats != nullptr)
    *options.cluster_stats = dist::ClusterStats{};
  MatchOptions chunk_options = options;
  dist::ClusterStats chunk_stats;
  if (options.cluster_stats != nullptr)
    chunk_options.cluster_stats = &chunk_stats;
  const support::ExecControl control = make_control(options);
  const support::ExecControl* ctl = control.armed() ? &control : nullptr;
  std::vector<Count> out;
  out.reserve(patterns.size());
  for (std::size_t offset = 0; offset < patterns.size();
       offset += PlanForest::kMaxPlans) {
    const std::size_t len =
        std::min(PlanForest::kMaxPlans, patterns.size() - offset);
    support::RunReport chunk_report;
    const std::vector<Count> chunk = count_batch_impl(
        plan_batch(patterns.subspan(offset, len), chunk_options),
        chunk_options, ctl,
        ctl != nullptr || report != nullptr ? &chunk_report : nullptr);
    out.insert(out.end(), chunk.begin(), chunk.end());
    if (options.cluster_stats != nullptr)
      options.cluster_stats->accumulate(chunk_stats);
    if (report != nullptr) report->merge(chunk_report);
    if (chunk_report.status != support::RunStatus::kOk) break;
  }
  out.resize(patterns.size(), 0);  // chunks skipped after a stop report 0
  return out;
}

std::vector<GraphPi::MotifCount> GraphPi::motif_census(
    int k, const MatchOptions& options) const {
  const std::vector<Pattern> motifs = patterns::connected_motifs(k);
  const std::vector<Count> counts = count_batch(motifs, options);
  std::vector<MotifCount> out;
  out.reserve(motifs.size());
  for (std::size_t i = 0; i < motifs.size(); ++i)
    out.push_back({motifs[i], counts[i]});
  return out;
}

void GraphPi::find_all(const Pattern& pattern, const EmbeddingCallback& cb,
                       const MatchOptions& options) const {
  const support::trace::ScopedSink sink(options.trace_sink);
  const support::trace::Span span("find_all");
  const ScopedIsa isa(options.kernels);
  MatchOptions listing = options;
  listing.use_iep = false;  // IEP cannot list embeddings
  const Configuration config = plan(pattern, listing);
  if (options.backend == Backend::kParallel) {
    ParallelOptions popt;
    popt.task_depth = options.task_depth;
    popt.num_threads = options.threads;
    enumerate_parallel(*graph_, config, cb, popt);
  } else {
    Matcher(*graph_, config).enumerate(cb);
  }
}

std::vector<std::vector<VertexId>> GraphPi::find_all(
    const Pattern& pattern, const MatchOptions& options) const {
  std::vector<std::vector<VertexId>> out;
  find_all(
      pattern,
      [&out](std::span<const VertexId> emb) {
        out.emplace_back(emb.begin(), emb.end());
      },
      options);
  return out;
}

bool empirically_validate(const Configuration& config) {
  // Two structurally different probe graphs plus the clique K_{n+2}.
  const int n = config.pattern.size();
  const std::vector<Graph> probes = {
      erdos_renyi(24, 80, /*seed=*/0xC0FFEE),
      clustered_power_law(30, 110, 2.3, 0.5, /*seed=*/0xBEEF),
      complete_graph(static_cast<VertexId>(n + 2)),
  };
  for (const auto& g : probes) {
    const Matcher matcher(g, config);
    const Count plain = matcher.count_plain();
    if (config.iep.k > 0 && matcher.count() != plain) return false;
    // Restriction correctness: unrestricted enumeration finds each
    // embedding |Aut| times.
    Configuration unrestricted = config;
    unrestricted.restrictions.clear();
    unrestricted.iep = IepPlan{};
    const Count redundant = Matcher(g, unrestricted).count_plain();
    if (redundant != plain * automorphism_count(config.pattern)) return false;
  }
  return true;
}

}  // namespace graphpi
