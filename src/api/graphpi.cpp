#include "api/graphpi.h"

#include "core/automorphism.h"
#include "support/check.h"

namespace graphpi {

GraphPi::GraphPi(const Graph& graph)
    : graph_(&graph), stats_(GraphStats::of(graph)) {}

Configuration GraphPi::plan(const Pattern& pattern,
                            const MatchOptions& options,
                            PlanningStats* diag) const {
  PlannerOptions planner;
  planner.use_iep = options.use_iep;
  planner.max_restriction_sets = options.max_restriction_sets;
  Configuration config = plan_configuration(pattern, stats_, planner, diag);
  if (options.empirical_validation) {
    GRAPHPI_CHECK_MSG(empirically_validate(config),
                      "planned configuration failed empirical validation");
  }
  return config;
}

Count GraphPi::count(const Pattern& pattern,
                     const MatchOptions& options) const {
  return count(plan(pattern, options), options);
}

Count GraphPi::count(const Configuration& config,
                     const MatchOptions& options) const {
  switch (options.backend) {
    case Backend::kSerial:
      return Matcher(*graph_, config).count();
    case Backend::kParallel: {
      ParallelOptions popt;
      popt.task_depth = options.task_depth;
      popt.num_threads = options.threads;
      return count_parallel(*graph_, config, popt);
    }
    case Backend::kDistributed: {
      dist::ClusterOptions copt;
      copt.nodes = options.nodes;
      copt.task_depth = options.task_depth;
      return dist::distributed_count(*graph_, config, copt);
    }
  }
  GRAPHPI_CHECK_MSG(false, "unknown backend");
  return 0;
}

void GraphPi::find_all(const Pattern& pattern, const EmbeddingCallback& cb,
                       const MatchOptions& options) const {
  MatchOptions listing = options;
  listing.use_iep = false;  // IEP cannot list embeddings
  const Configuration config = plan(pattern, listing);
  if (options.backend == Backend::kParallel) {
    ParallelOptions popt;
    popt.task_depth = options.task_depth;
    popt.num_threads = options.threads;
    enumerate_parallel(*graph_, config, cb, popt);
  } else {
    Matcher(*graph_, config).enumerate(cb);
  }
}

std::vector<std::vector<VertexId>> GraphPi::find_all(
    const Pattern& pattern, const MatchOptions& options) const {
  std::vector<std::vector<VertexId>> out;
  find_all(
      pattern,
      [&out](std::span<const VertexId> emb) {
        out.emplace_back(emb.begin(), emb.end());
      },
      options);
  return out;
}

bool empirically_validate(const Configuration& config) {
  // Two structurally different probe graphs plus the clique K_{n+2}.
  const int n = config.pattern.size();
  const std::vector<Graph> probes = {
      erdos_renyi(24, 80, /*seed=*/0xC0FFEE),
      clustered_power_law(30, 110, 2.3, 0.5, /*seed=*/0xBEEF),
      complete_graph(static_cast<VertexId>(n + 2)),
  };
  for (const auto& g : probes) {
    const Matcher matcher(g, config);
    const Count plain = matcher.count_plain();
    if (config.iep.k > 0 && matcher.count() != plain) return false;
    // Restriction correctness: unrestricted enumeration finds each
    // embedding |Aut| times.
    Configuration unrestricted = config;
    unrestricted.restrictions.clear();
    unrestricted.iep = IepPlan{};
    const Count redundant = Matcher(g, unrestricted).count_plain();
    if (redundant != plain * automorphism_count(config.pattern)) return false;
  }
  return true;
}

}  // namespace graphpi
