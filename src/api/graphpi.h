// GraphPi public facade.
//
// The paper's user-facing contract (Section III): "Users only need to
// input a pattern and a data graph in the form of adjacency lists to run
// GraphPi." This header is that entry point — it wires together
// configuration generation (Algorithm 1 + the 2-phase schedule generator),
// performance prediction, and the execution engines.
//
//   #include "api/graphpi.h"
//   graphpi::Graph g = graphpi::load_edge_list("graph.txt");
//   graphpi::Pattern house = graphpi::patterns::house();
//   graphpi::Count n = graphpi::GraphPi(g).count(house);
//
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/configuration.h"
#include "core/pattern.h"
#include "core/pattern_library.h"
#include "core/plan.h"
#include "core/plan_forest.h"
#include "dist/comm.h"
#include "dist/runtime.h"
#include "engine/matcher.h"
#include "engine/parallel.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/vertex_set.h"
#include "io/shard_snapshot.h"
#include "io/snapshot.h"
#include "support/exec_control.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace graphpi {

/// Execution backend selection.
enum class Backend {
  kSerial,       ///< single-thread Matcher
  kParallel,     ///< OpenMP engine (Section IV-E, intra-node)
  kDistributed,  ///< simulated multi-node cluster (Section IV-E)
  /// Generated C++ kernel: the plan IR is emitted, compiled by the system
  /// compiler, dlopened and executed (engine/jit.h). Kernels are built
  /// with OpenMP when available and partition the root-vertex loop over
  /// `MatchOptions::threads` workers. Falls back to the interpreter
  /// transparently when no compiler is available; listing always uses
  /// the interpreter.
  kGenerated,
};

struct MatchOptions {
  /// Count with the Inclusion–Exclusion Principle when a valid plan
  /// exists (Section IV-D). Ignored for listing.
  bool use_iep = true;
  Backend backend = Backend::kSerial;
  /// Set-kernel ISA for this call (graph/vertex_set.h): kAuto keeps the
  /// current runtime dispatch choice; any other value selects that table
  /// for the duration of the call and restores the previous selection
  /// after. The dispatch table is an unsynchronized process-wide global —
  /// don't mix per-call overrides with concurrent matching.
  KernelIsa kernels = KernelIsa::kAuto;
  /// Worker threads for the parallel and generated backends (0 = OpenMP
  /// runtime default); `nodes` / `task_depth` apply to the distributed
  /// (and task_depth also the parallel) backend.
  int threads = 0;
  int nodes = 2;
  int task_depth = 1;
  /// How the distributed backend partitions the data graph into per-node
  /// CSR shards (dist/shard.h).
  dist::PartitionStrategy partition = dist::PartitionStrategy::kHash;
  /// How the distributed backend drives its logical nodes
  /// (dist/runtime.h): kLockstep is the deterministic single-threaded
  /// round-robin reference; kAsync runs one worker pool per node with
  /// bounded mailboxes and coalesced continuation flushes. Counts are
  /// bit-identical either way.
  dist::ExecMode dist_exec = dist::ExecMode::kLockstep;
  /// Async distributed mode only: worker threads per logical node (>= 1).
  int dist_workers = 1;
  /// Async distributed mode only: mailbox frames before senders stall
  /// (0 = unbounded; see dist::ClusterOptions::mailbox_capacity).
  int dist_mailbox_capacity = 1024;
  /// Observability out-param: when non-null, the distributed backend
  /// writes the statistics of the call here — tasks, messages, serialized
  /// bytes, shipped candidate vertices, per-node load, and the shard
  /// shape. Each public call overwrites (a batch spanning several 64-plan
  /// forest chunks reports its chunks' aggregate). Ignored by the serial
  /// and parallel backends.
  dist::ClusterStats* cluster_stats = nullptr;
  /// Re-validate the planned configuration empirically on small graphs
  /// before running (cheap belt-and-braces on top of the K_n validation).
  bool empirical_validation = false;
  /// Cap on Algorithm 1's restriction-set generation.
  std::size_t max_restriction_sets = 64;

  // --- Bounded execution (support/exec_control.h). All four backends
  // poll cooperatively at root-vertex granularity; a stopped run returns
  // best-effort partial counts and the RunReport out-param of the
  // counting calls carries status + completed-root tally.

  /// Wall-clock deadline for one counting call, in milliseconds measured
  /// from the start of execution (planning is not included). 0 = none.
  double timeout_ms = 0.0;
  /// Caller-owned cooperative cancel flag; set it (from any thread) to
  /// stop an in-flight counting call at the next poll. Null = none. The
  /// flag must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
  /// Stop after ~this many completed root units (root vertices, or
  /// depth-`task_depth` prefix tasks for the parallel per-pattern
  /// engine). 0 = unlimited. Enforced at poll boundaries.
  std::uint64_t work_budget = 0;
  /// Root units between deadline/cancel/budget polls (rounded up to a
  /// power of two; 0 = default 64). Smaller strides tighten stop latency
  /// at the cost of more clock reads on the hot path.
  std::uint32_t poll_stride = 0;

  /// Observability: when non-null, trace spans emitted during this call
  /// (per-backend run phases, JIT compiles, shard partitioning, ...) are
  /// recorded into this caller-owned ring buffer (support/trace.h) for
  /// the duration of the call; export with TraceBuffer::to_chrome_json().
  /// Spans are run/phase granular — never per-root — so the overhead is
  /// negligible. Null leaves the process-wide sink (if any) in place.
  /// Requires metrics to be enabled (default; see support/metrics.h).
  support::trace::TraceBuffer* trace_sink = nullptr;

  /// Deterministic fault injection for the distributed backend's
  /// message channel (dist/comm.h): seeded per-kind drop / duplicate /
  /// reorder / corrupt probabilities. The reliability layer (CRC frames,
  /// retransmit, dedup) masks the injected faults, so counts stay
  /// bit-identical; the injected/recovered event tallies surface through
  /// `cluster_stats`. Inactive (all-zero rates) by default; ignored by
  /// the other backends.
  dist::FaultPlan faults{};
};

/// High-level handle binding a data graph; plans and runs pattern jobs.
class GraphPi {
 public:
  explicit GraphPi(const Graph& graph);

  /// Plans the optimal configuration of `pattern` for this graph
  /// (Figure 3's preprocessing stage). Deterministic.
  [[nodiscard]] Configuration plan(const Pattern& pattern,
                                   const MatchOptions& options = {},
                                   PlanningStats* diag = nullptr) const;

  /// Counts embeddings of `pattern` (deduplicated, each subgraph once).
  ///
  /// When `report` is non-null it receives the run's outcome: kOk with
  /// the exact count, or — if `timeout_ms` / `cancel` / `work_budget`
  /// stopped the run early — the stop status plus the completed root
  /// tally, with the return value a best-effort partial count. With a
  /// null report a stopped run still returns the partial count; pass a
  /// report to distinguish it from an exact one.
  [[nodiscard]] Count count(const Pattern& pattern,
                            const MatchOptions& options = {},
                            support::RunReport* report = nullptr) const;

  /// Runs a previously planned configuration.
  [[nodiscard]] Count count(const Configuration& config,
                            const MatchOptions& options = {},
                            support::RunReport* report = nullptr) const;

  /// Counts every pattern of a batch in ONE traversal of the data graph:
  /// each pattern is planned independently, the plans are compiled into
  /// the executable IR (core/plan.h) and merged into a prefix-sharing
  /// trie (core/plan_forest.h), and shared loop prefixes — the outer
  /// vertex scan, common candidate intersections, common IEP suffix sets
  /// — are extended once for all patterns. Results are indexed like
  /// `patterns`; duplicates are allowed and each gets its own counter.
  /// Patterns must have >= 2 vertices. Every backend runs batched: the
  /// distributed backend executes the forest as one sharded batch
  /// traversal (dist/runtime.h).
  ///
  /// Bounded execution spans the whole batch: one deadline covers every
  /// 64-plan chunk (a work budget applies per chunk), `report` (optional)
  /// aggregates across chunks (root tallies add, the first non-ok status
  /// wins), and once a chunk stops the remaining chunks are skipped
  /// (their counts return 0).
  [[nodiscard]] std::vector<Count> count_batch(
      std::span<const Pattern> patterns, const MatchOptions& options = {},
      support::RunReport* report = nullptr) const;

  /// Plans `patterns` and merges the compiled plans into a forest — the
  /// planning half of count_batch, exposed so callers can reuse a forest
  /// across runs or inspect its sharing stats.
  [[nodiscard]] PlanForest plan_batch(std::span<const Pattern> patterns,
                                      const MatchOptions& options = {}) const;

  /// Runs a previously built forest; results indexed like forest.plans().
  [[nodiscard]] std::vector<Count> count_batch(
      const PlanForest& forest, const MatchOptions& options = {},
      support::RunReport* report = nullptr) const;

  /// One entry of a motif census: a connected k-vertex pattern and its
  /// (deduplicated) embedding count.
  struct MotifCount {
    Pattern pattern;
    Count count = 0;
  };

  /// Counts every connected k-motif (3 <= k <= 5) with one batched
  /// traversal — the convenience wrapper the motif-census example and
  /// bench use. Order matches patterns::connected_motifs(k).
  [[nodiscard]] std::vector<MotifCount> motif_census(
      int k, const MatchOptions& options = {}) const;

  /// Lists all embeddings (never uses IEP). The callback receives the
  /// data-graph vertices indexed by pattern vertex.
  void find_all(const Pattern& pattern, const EmbeddingCallback& cb,
                const MatchOptions& options = {}) const;

  /// Collects embeddings into a vector (convenience; prefer the callback
  /// form for large result sets).
  [[nodiscard]] std::vector<std::vector<VertexId>> find_all(
      const Pattern& pattern, const MatchOptions& options = {}) const;

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const GraphStats& stats() const noexcept { return stats_; }

  /// Snapshot of the process-wide metrics registry (support/metrics.h):
  /// every engine/JIT/distributed counter, gauge, and latency histogram
  /// accumulated since process start. Diff two snapshots to isolate one
  /// call: `auto before = GraphPi::metrics_snapshot(); ...;
  /// auto delta = GraphPi::metrics_snapshot().diff(before);`. Export with
  /// Snapshot::to_json() / to_prometheus().
  [[nodiscard]] static support::metrics::Snapshot metrics_snapshot();

 private:
  /// Runs one forest with an externally owned control so a chunked batch
  /// shares a single deadline/budget across its chunks.
  std::vector<Count> count_batch_impl(const PlanForest& forest,
                                      const MatchOptions& options,
                                      const support::ExecControl* control,
                                      support::RunReport* report) const;

  const Graph* graph_;
  GraphStats stats_;
};

/// Cross-checks a planned configuration on small deterministic graphs:
/// IEP count == plain count and restricted count * |Aut| == unrestricted
/// count. Returns true when all checks pass.
[[nodiscard]] bool empirically_validate(const Configuration& config);

}  // namespace graphpi
