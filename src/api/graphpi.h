// GraphPi public facade.
//
// The paper's user-facing contract (Section III): "Users only need to
// input a pattern and a data graph in the form of adjacency lists to run
// GraphPi." This header is that entry point — it wires together
// configuration generation (Algorithm 1 + the 2-phase schedule generator),
// performance prediction, and the execution engines.
//
//   #include "api/graphpi.h"
//   graphpi::Graph g = graphpi::load_edge_list("graph.txt");
//   graphpi::Pattern house = graphpi::patterns::house();
//   graphpi::Count n = graphpi::GraphPi(g).count(house);
//
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/configuration.h"
#include "core/pattern.h"
#include "core/pattern_library.h"
#include "core/plan.h"
#include "core/plan_forest.h"
#include "dist/runtime.h"
#include "engine/matcher.h"
#include "engine/parallel.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/vertex_set.h"

namespace graphpi {

/// Execution backend selection.
enum class Backend {
  kSerial,       ///< single-thread Matcher
  kParallel,     ///< OpenMP engine (Section IV-E, intra-node)
  kDistributed,  ///< simulated multi-node cluster (Section IV-E)
  /// Generated C++ kernel: the plan IR is emitted, compiled by the system
  /// compiler, dlopened and executed (engine/jit.h). Kernels are built
  /// with OpenMP when available and partition the root-vertex loop over
  /// `MatchOptions::threads` workers. Falls back to the interpreter
  /// transparently when no compiler is available; listing always uses
  /// the interpreter.
  kGenerated,
};

struct MatchOptions {
  /// Count with the Inclusion–Exclusion Principle when a valid plan
  /// exists (Section IV-D). Ignored for listing.
  bool use_iep = true;
  Backend backend = Backend::kSerial;
  /// Set-kernel ISA for this call (graph/vertex_set.h): kAuto keeps the
  /// current runtime dispatch choice; any other value selects that table
  /// for the duration of the call and restores the previous selection
  /// after. The dispatch table is an unsynchronized process-wide global —
  /// don't mix per-call overrides with concurrent matching.
  KernelIsa kernels = KernelIsa::kAuto;
  /// Worker threads for the parallel and generated backends (0 = OpenMP
  /// runtime default); `nodes` / `task_depth` apply to the distributed
  /// (and task_depth also the parallel) backend.
  int threads = 0;
  int nodes = 2;
  int task_depth = 1;
  /// How the distributed backend partitions the data graph into per-node
  /// CSR shards (dist/shard.h).
  dist::PartitionStrategy partition = dist::PartitionStrategy::kHash;
  /// Observability out-param: when non-null, the distributed backend
  /// writes the statistics of the call here — tasks, messages, serialized
  /// bytes, shipped candidate vertices, per-node load, and the shard
  /// shape. Each public call overwrites (a batch spanning several 64-plan
  /// forest chunks reports its chunks' aggregate). Ignored by the serial
  /// and parallel backends.
  dist::ClusterStats* cluster_stats = nullptr;
  /// Re-validate the planned configuration empirically on small graphs
  /// before running (cheap belt-and-braces on top of the K_n validation).
  bool empirical_validation = false;
  /// Cap on Algorithm 1's restriction-set generation.
  std::size_t max_restriction_sets = 64;
};

/// High-level handle binding a data graph; plans and runs pattern jobs.
class GraphPi {
 public:
  explicit GraphPi(const Graph& graph);

  /// Plans the optimal configuration of `pattern` for this graph
  /// (Figure 3's preprocessing stage). Deterministic.
  [[nodiscard]] Configuration plan(const Pattern& pattern,
                                   const MatchOptions& options = {},
                                   PlanningStats* diag = nullptr) const;

  /// Counts embeddings of `pattern` (deduplicated, each subgraph once).
  [[nodiscard]] Count count(const Pattern& pattern,
                            const MatchOptions& options = {}) const;

  /// Runs a previously planned configuration.
  [[nodiscard]] Count count(const Configuration& config,
                            const MatchOptions& options = {}) const;

  /// Counts every pattern of a batch in ONE traversal of the data graph:
  /// each pattern is planned independently, the plans are compiled into
  /// the executable IR (core/plan.h) and merged into a prefix-sharing
  /// trie (core/plan_forest.h), and shared loop prefixes — the outer
  /// vertex scan, common candidate intersections, common IEP suffix sets
  /// — are extended once for all patterns. Results are indexed like
  /// `patterns`; duplicates are allowed and each gets its own counter.
  /// Patterns must have >= 2 vertices. Every backend runs batched: the
  /// distributed backend executes the forest as one sharded batch
  /// traversal (dist/runtime.h).
  [[nodiscard]] std::vector<Count> count_batch(
      std::span<const Pattern> patterns,
      const MatchOptions& options = {}) const;

  /// Plans `patterns` and merges the compiled plans into a forest — the
  /// planning half of count_batch, exposed so callers can reuse a forest
  /// across runs or inspect its sharing stats.
  [[nodiscard]] PlanForest plan_batch(std::span<const Pattern> patterns,
                                      const MatchOptions& options = {}) const;

  /// Runs a previously built forest; results indexed like forest.plans().
  [[nodiscard]] std::vector<Count> count_batch(
      const PlanForest& forest, const MatchOptions& options = {}) const;

  /// One entry of a motif census: a connected k-vertex pattern and its
  /// (deduplicated) embedding count.
  struct MotifCount {
    Pattern pattern;
    Count count = 0;
  };

  /// Counts every connected k-motif (3 <= k <= 5) with one batched
  /// traversal — the convenience wrapper the motif-census example and
  /// bench use. Order matches patterns::connected_motifs(k).
  [[nodiscard]] std::vector<MotifCount> motif_census(
      int k, const MatchOptions& options = {}) const;

  /// Lists all embeddings (never uses IEP). The callback receives the
  /// data-graph vertices indexed by pattern vertex.
  void find_all(const Pattern& pattern, const EmbeddingCallback& cb,
                const MatchOptions& options = {}) const;

  /// Collects embeddings into a vector (convenience; prefer the callback
  /// form for large result sets).
  [[nodiscard]] std::vector<std::vector<VertexId>> find_all(
      const Pattern& pattern, const MatchOptions& options = {}) const;

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const GraphStats& stats() const noexcept { return stats_; }

 private:
  const Graph* graph_;
  GraphStats stats_;
};

/// Cross-checks a planned configuration on small deterministic graphs:
/// IEP count == plain count and restricted count * |Aut| == unrestricted
/// count. Returns true when all checks pass.
[[nodiscard]] bool empirically_validate(const Configuration& config);

}  // namespace graphpi
