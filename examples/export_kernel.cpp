// Kernel export: emits the plan-IR C++ source GraphPi generates for a
// configuration (Figure 3's code-generation stage) so it can be
// inspected or compiled standalone — IEP plans included (the emitted
// kernel evaluates the suffix-set term products inline and divides by
// the surviving-automorphism factor itself).
//
//   ./export_kernel [pattern_index 1..6] [out.cpp]
//
// Without an output path the standalone program is printed to stdout.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "api/graphpi.h"
#include "codegen/codegen.h"

int main(int argc, char** argv) {
  using namespace graphpi;

  const int pattern_index = argc > 1 ? std::atoi(argv[1]) : 1;
  const Pattern pattern = patterns::evaluation_pattern(pattern_index);

  // Plan against a representative stand-in so the emitted schedule is the
  // one GraphPi would actually run.
  const Graph graph = datasets::load("wiki_vote", 0.1);
  const Configuration config = GraphPi(graph).plan(pattern);

  const std::string source = codegen::generate_standalone(config);
  if (argc > 2) {
    std::ofstream out(argv[2]);
    if (!out) {
      std::cerr << "cannot write " << argv[2] << "\n";
      return 1;
    }
    out << source;
    std::cout << "wrote " << source.size() << " bytes to " << argv[2]
              << "\n  compile: g++ -O2 -std=c++17 -o kernel " << argv[2]
              << "\n  run:     ./kernel graph.txt\n";
  } else {
    std::cout << source;
  }
  return 0;
}
