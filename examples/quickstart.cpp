// Quickstart: the 30-second tour of the GraphPi API.
//
//   ./quickstart [edge_list.txt]
//
// Loads a graph (or generates a synthetic social network when no file is
// given), plans the optimal configuration for the House pattern, and
// counts its embeddings with and without the Inclusion–Exclusion
// optimization.
#include <cstdio>
#include <iostream>

#include "api/graphpi.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;

  // 1. Get a data graph: a file in SNAP edge-list format, or a seeded
  //    synthetic stand-in for the paper's Wiki-Vote dataset.
  Graph graph = argc > 1 ? load_edge_list(argv[1])
                         : datasets::load("wiki_vote", /*scale=*/0.5);
  std::cout << "graph: " << graph.vertex_count() << " vertices, "
            << graph.edge_count() << " edges, " << graph.triangle_count()
            << " triangles\n";

  // 2. Pick a pattern. The library ships the paper's patterns; arbitrary
  //    patterns can be built from edge lists or adjacency strings.
  const Pattern house = patterns::house();
  std::cout << "pattern: house " << house.to_string() << "\n";

  // 3. Plan: Algorithm 1 generates restriction sets, the 2-phase
  //    generator enumerates efficient schedules, and the performance
  //    model picks the optimal combination (Figure 3).
  const GraphPi engine(graph);
  PlanningStats diag;
  const Configuration config = engine.plan(house, MatchOptions{}, &diag);
  std::cout << "planned configuration: " << config.to_string() << "\n"
            << "  schedules: " << diag.schedules_total << " total -> "
            << diag.schedules_phase1 << " phase-1 -> "
            << diag.schedules_efficient << " efficient\n"
            << "  restriction sets: " << diag.restriction_sets << "\n"
            << "  planning time: " << diag.planning_seconds * 1e3 << " ms\n";

  // 4. Count. IEP replaces the innermost loops with closed-form
  //    inclusion–exclusion sums (Section IV-D).
  support::Timer timer;
  const Count with_iep = engine.count(config, MatchOptions{});
  const double iep_secs = timer.elapsed_seconds();

  MatchOptions no_iep;
  no_iep.use_iep = false;
  timer.reset();
  const Count plain = engine.count(engine.plan(house, no_iep), no_iep);
  const double plain_secs = timer.elapsed_seconds();

  std::cout << "embeddings: " << with_iep << "\n";
  std::printf("time: %.3fs with IEP, %.3fs without (%.1fx)\n", iep_secs,
              plain_secs, plain_secs / std::max(iep_secs, 1e-9));
  if (with_iep != plain) {
    std::cerr << "BUG: IEP and plain counts disagree!\n";
    return 1;
  }

  // 5. Listing variant: stream embeddings through a callback.
  Count listed = 0;
  engine.find_all(patterns::clique(3),
                  [&listed](std::span<const VertexId>) { ++listed; });
  std::cout << "triangles (listed one by one): " << listed << "\n";
  return 0;
}
