// Fraud-ring detection (labeled matching): the paper's introduction
// motivates pattern matching with fraud detection; this example realizes
// the classic scenario — finding suspicious transaction rings where
// accounts of specific types form a cycle with a shared counterparty.
//
// Graph model: a synthetic payment network whose vertices carry labels
//   0 = merchant, 1 = personal account, 2 = mule-like account
// (degree-biased: the busiest vertices become merchants, as in real
// payment graphs).
//
// Patterns:
//   ring4:  a 4-cycle of alternating personal/mule accounts
//   funnel: two mules both paying the same merchant and each other
//
//   ./fraud_rings [n_vertices] [n_edges] [seed]
#include <cstdlib>
#include <iostream>

#include "core/labeled_pattern.h"
#include "engine/labeled.h"
#include "graph/generators.h"
#include "graph/labeled_graph.h"
#include "support/table.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;

  const auto n = static_cast<VertexId>(argc > 1 ? std::atoll(argv[1]) : 4000);
  const auto m = static_cast<std::uint64_t>(
      argc > 2 ? std::atoll(argv[2]) : 30000);
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 2020;

  const LabeledGraph network = assign_labels(
      clustered_power_law(n, m, 2.2, 0.4, seed), /*n_labels=*/3,
      seed ^ 0xF00D, /*degree_biased=*/true);
  std::cout << "payment network: " << network.vertex_count()
            << " accounts, " << network.structure().edge_count()
            << " transactions\n";
  for (Label l = 0; l < 3; ++l)
    std::cout << "  label " << l << ": " << network.label_frequency(l)
              << " accounts\n";

  struct Scenario {
    const char* name;
    LabeledPattern pattern;
  };
  const Scenario scenarios[] = {
      {"ring4 (personal-mule alternating cycle)",
       LabeledPattern(Pattern(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
                      {1, 2, 1, 2})},
      {"funnel (two mules, one merchant, linked)",
       LabeledPattern(Pattern(3, {{0, 1}, {0, 2}, {1, 2}}), {0, 2, 2})},
      {"laundering chain (merchant-mule-mule-merchant)",
       LabeledPattern(Pattern(4, {{0, 1}, {1, 2}, {2, 3}}), {0, 2, 2, 0})},
  };

  support::Table table({"scenario", "|Aut| labeled", "matches", "time(s)",
                        "sample"});
  for (const auto& s : scenarios) {
    const LabeledMatcher matcher(network, s.pattern);
    support::Timer t;
    const Count matches = matcher.count();
    const double secs = t.elapsed_seconds();

    std::string sample = "-";
    matcher.enumerate([&sample](std::span<const VertexId> emb) {
      if (sample != "-") return;  // keep the first hit only
      sample.clear();
      for (std::size_t i = 0; i < emb.size(); ++i)
        sample += (i ? "," : "") + std::to_string(emb[i]);
    });
    table.add(s.name, labeled_automorphisms(s.pattern).size(), matches,
              secs, sample);
  }
  table.print();
  std::cout << "(labels constrain candidates per vertex; symmetry breaking "
               "uses only label-preserving automorphisms)\n";
  return 0;
}
