// Generated-vs-interpreted demo: runs the same patterns through the
// in-process Matcher (Backend::kSerial) and the self-compiling kernel
// cache (Backend::kGenerated — plan IR -> emitted C++ -> system compiler
// -> dlopen, engine/jit.h), checks the counts agree, and reports both
// timings. The first generated run pays the compile; the second shows
// the steady-state kernel.
//
//   ./generated_kernel [dataset=wiki_vote] [scale=0.3]
#include <cstdio>
#include <cstdlib>

#include "api/graphpi.h"
#include "engine/jit.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;

  const std::string dataset = argc > 1 ? argv[1] : "wiki_vote";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.3;
  const Graph graph = datasets::load(dataset, scale);
  const GraphPi engine(graph);

  std::printf("graph: %s (scale %.2f) — %u vertices, %llu edges\n",
              dataset.c_str(), scale, graph.vertex_count(),
              static_cast<unsigned long long>(graph.edge_count()));
  if (!jit::compiler_available()) {
    std::printf("no system compiler found: Backend::kGenerated will fall "
                "back to the interpreter.\n");
  } else {
    std::printf("compiler: %s, set kernels: %s\n",
                jit::compiler_command().c_str(), active_isa());
  }

  const std::pair<const char*, Pattern> cases[] = {
      {"house (IEP)", patterns::house()},
      {"pentagon (IEP)", patterns::pentagon()},
      {"clique4", patterns::clique(4)},
  };
  MatchOptions generated;
  generated.backend = Backend::kGenerated;

  std::printf("%-16s %14s %12s %12s %12s\n", "pattern", "count",
              "interp(ms)", "gen#1(ms)", "gen#2(ms)");
  for (const auto& [name, pattern] : cases) {
    support::Timer t;
    const Count serial = engine.count(pattern);
    const double interp_ms = t.elapsed_seconds() * 1e3;

    t = support::Timer();
    const Count gen1 = engine.count(pattern, generated);  // includes compile
    const double gen1_ms = t.elapsed_seconds() * 1e3;

    t = support::Timer();
    const Count gen2 = engine.count(pattern, generated);  // cached kernel
    const double gen2_ms = t.elapsed_seconds() * 1e3;

    if (serial != gen1 || serial != gen2) {
      std::fprintf(stderr, "%s: MISMATCH serial=%llu gen=%llu/%llu\n", name,
                   static_cast<unsigned long long>(serial),
                   static_cast<unsigned long long>(gen1),
                   static_cast<unsigned long long>(gen2));
      return 1;
    }
    std::printf("%-16s %14llu %12.2f %12.2f %12.2f\n", name,
                static_cast<unsigned long long>(serial), interp_ms, gen1_ms,
                gen2_ms);
  }

  const auto stats = jit::KernelCache::instance().stats();
  std::printf(
      "kernel cache: %llu compiled, %llu memory hits, %llu disk hits (%s)\n",
      static_cast<unsigned long long>(stats.compiles),
      static_cast<unsigned long long>(stats.memory_hits),
      static_cast<unsigned long long>(stats.disk_hits),
      jit::KernelCache::instance().cache_dir().c_str());
  return 0;
}
