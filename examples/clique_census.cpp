// Clique census: counts k-cliques for k = 3..6 on a dense stand-in,
// comparing the GraphPi pipeline against the naive and GraphZero
// baselines — a miniature of the paper's Figure 8 story on one workload
// family.
//
//   ./clique_census [dataset] [scale] [max_k]
#include <cstdlib>
#include <iostream>
#include <string>

#include "api/graphpi.h"
#include "engine/graphzero.h"
#include "engine/naive.h"
#include "support/table.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;

  const std::string dataset = argc > 1 ? argv[1] : "orkut";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.08;
  const int max_k = argc > 3 ? std::atoi(argv[3]) : 4;

  const Graph graph = datasets::load(dataset, scale);
  std::cout << "dataset " << dataset << " (scale " << scale << "): "
            << graph.vertex_count() << " vertices, " << graph.edge_count()
            << " edges\n";
  const GraphPi engine(graph);

  support::Table table({"k", "cliques", "graphpi(s)", "graphzero(s)",
                        "naive(s)", "naive/graphpi"});
  for (int k = 3; k <= max_k; ++k) {
    const Pattern clique = patterns::clique(k);

    support::Timer t;
    const Count n = engine.count(clique);
    const double graphpi_secs = t.elapsed_seconds();

    t.reset();
    const Count gz = graphzero::count(graph, clique);
    const double graphzero_secs = t.elapsed_seconds();

    t.reset();
    const Count naive = naive_count(graph, clique);
    const double naive_secs = t.elapsed_seconds();

    if (gz != n || naive != n) {
      std::cerr << "BUG: engines disagree for k=" << k << "\n";
      return 1;
    }
    table.add(k, n, graphpi_secs, graphzero_secs, naive_secs,
              naive_secs / std::max(graphpi_secs, 1e-9));
  }
  table.print();
  return 0;
}
