// Distributed counting demo: runs the simulated multi-node runtime
// (Section IV-E) and reports task distribution, steals, and message
// traffic.
//
//   ./distributed_count [nodes] [dataset] [scale] [pattern_index]
#include <cstdlib>
#include <iostream>
#include <string>

#include "api/graphpi.h"
#include "dist/runtime.h"
#include "support/table.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::string dataset = argc > 2 ? argv[2] : "patents";
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.3;
  const int pattern_index = argc > 4 ? std::atoi(argv[4]) : 1;

  const Graph graph = datasets::load(dataset, scale);
  const Pattern pattern = patterns::evaluation_pattern(pattern_index);
  const GraphPi engine(graph);
  const Configuration config = engine.plan(pattern);

  std::cout << "pattern P" << pattern_index << " on " << dataset
            << " (scale " << scale << "), " << nodes
            << " simulated nodes\n";

  // Reference run on one node.
  support::Timer timer;
  const Count serial = Matcher(graph, config).count();
  const double serial_secs = timer.elapsed_seconds();

  dist::ClusterOptions options;
  options.nodes = nodes;
  options.task_depth = 2;  // fine-grained tasks (paper: outer two loops)
  dist::ClusterStats stats;
  timer.reset();
  const Count distributed =
      dist::distributed_count(graph, config, options, &stats);
  const double dist_secs = timer.elapsed_seconds();

  if (distributed != serial) {
    std::cerr << "BUG: distributed count mismatch\n";
    return 1;
  }
  std::cout << "embeddings: " << distributed << " (serial " << serial_secs
            << "s, cluster wall " << dist_secs
            << "s on one physical core)\n"
            << "tasks: " << stats.total_tasks << ", messages: "
            << stats.messages << ", steals: " << stats.steals_successful
            << "/" << stats.steals_attempted << " successful\n";

  support::Table table({"node", "tasks", "busy(s)"});
  for (std::size_t i = 0; i < stats.tasks_per_node.size(); ++i)
    table.add(i, stats.tasks_per_node[i], stats.seconds_per_node[i]);
  table.print();
  return 0;
}
