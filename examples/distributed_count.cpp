// Sharded distributed counting demo: partitions the data graph into
// per-node CSR shards (hash or degree-balanced range), runs the sharded
// runtime — every node touches only its own shard, shipping candidate
// continuations across boundaries — and reports the message/byte economy
// plus the comm-cost model's projected makespan.
//
//   ./distributed_count [nodes] [dataset] [scale] [pattern_index]
//                       [--nodes N] [--partition hash|range]
//                       [--task-depth D]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "api/graphpi.h"
#include "dist/runtime.h"
#include "dist/simulator.h"
#include "support/table.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;

  int nodes = 4;
  std::string dataset = "patents";
  double scale = 0.3;
  int pattern_index = 1;
  int task_depth = 2;  // fine-grained tasks (paper: outer two loops)
  dist::PartitionStrategy partition = dist::PartitionStrategy::kHash;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nodes" && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (arg == "--task-depth" && i + 1 < argc) {
      task_depth = std::atoi(argv[++i]);
    } else if (arg.rfind("--partition=", 0) == 0) {
      if (!dist::parse_partition(arg.substr(12), partition)) {
        std::cerr << "unknown partition strategy: " << arg << "\n";
        return 1;
      }
    } else if (arg == "--partition" && i + 1 < argc) {
      if (!dist::parse_partition(argv[++i], partition)) {
        std::cerr << "unknown partition strategy: " << argv[i] << "\n";
        return 1;
      }
    } else {
      switch (positional++) {
        case 0: nodes = std::atoi(arg.c_str()); break;
        case 1: dataset = arg; break;
        case 2: scale = std::atof(arg.c_str()); break;
        case 3: pattern_index = std::atoi(arg.c_str()); break;
        default:
          std::cerr << "unexpected argument: " << arg << "\n";
          return 1;
      }
    }
  }

  const Graph graph = datasets::load(dataset, scale);
  const Pattern pattern = patterns::evaluation_pattern(pattern_index);
  const GraphPi engine(graph);
  const Configuration config = engine.plan(pattern);

  std::cout << "pattern P" << pattern_index << " on " << dataset << " (scale "
            << scale << "), " << nodes << " sharded nodes, "
            << dist::to_string(partition) << " partition, task depth "
            << task_depth << "\n";

  // Reference run on one node holding the whole graph.
  support::Timer timer;
  const Count serial = Matcher(graph, config).count();
  const double serial_secs = timer.elapsed_seconds();

  dist::ClusterOptions options;
  options.nodes = nodes;
  options.task_depth = task_depth;
  options.partition = partition;
  dist::ClusterStats stats;
  timer.reset();
  const Count distributed =
      dist::distributed_count(graph, config, options, &stats);
  const double dist_secs = timer.elapsed_seconds();

  if (distributed != serial) {
    std::cerr << "BUG: distributed count mismatch\n";
    return 1;
  }
  std::cout << "embeddings: " << distributed << " (serial " << serial_secs
            << "s, sharded sim wall " << dist_secs
            << "s on one physical core)\n"
            << "tasks: " << stats.total_tasks
            << ", messages: " << stats.messages << " (" << stats.bytes
            << " B), continuations: " << stats.continuation_messages << " ("
            << stats.continuation_bytes << " B, "
            << stats.shipped_set_vertices
            << " candidate vertices shipped), replication factor: "
            << stats.replication_factor << "\n";

  support::Table table({"node", "owned", "ghosts", "tasks", "busy(s)",
                        "sent msgs", "sent B"});
  for (std::size_t i = 0; i < stats.tasks_per_node.size(); ++i)
    table.add(i, stats.owned_per_node[i], stats.ghosts_per_node[i],
              stats.tasks_per_node[i], stats.seconds_per_node[i],
              stats.sent_messages_per_node[i], stats.sent_bytes_per_node[i]);
  table.print();

  // Project the run onto real interconnects with the measured counters.
  for (const double gbits : {10.0, 100.0}) {
    dist::CommCostModel model;
    model.bytes_per_second = gbits * 1e9 / 8.0;
    const dist::ShardSimResult sim = dist::simulate_sharded_cluster(
        stats.seconds_per_node, stats.sent_messages_per_node,
        stats.sent_bytes_per_node, model);
    std::cout << "projected @" << gbits << " Gb/s: makespan "
              << sim.makespan_seconds << "s (comm " << sim.comm_seconds
              << "s), speedup vs serial " << sim.speedup_vs_serial()
              << "x, efficiency " << sim.efficiency(nodes) << "\n";
  }
  return 0;
}
