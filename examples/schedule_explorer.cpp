// Schedule explorer: prints every efficient schedule of a pattern with
// its model-predicted cost and measured runtime — an interactive window
// into the Section IV-B/IV-C machinery (and a miniature Figure 9).
//
//   ./schedule_explorer [pattern_index 1..6] [dataset] [scale]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "api/graphpi.h"
#include "engine/matcher.h"
#include "support/table.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;

  const int pattern_index = argc > 1 ? std::atoi(argv[1]) : 1;
  const std::string dataset = argc > 2 ? argv[2] : "wiki_vote";
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.06;

  const Pattern pattern = patterns::evaluation_pattern(pattern_index);
  const Graph graph = datasets::load(dataset, scale);
  const GraphStats stats = GraphStats::of(graph);
  std::cout << "pattern P" << pattern_index << " " << pattern.to_string()
            << " on " << dataset << " (scale " << scale << ")\n";

  const auto generated = generate_schedules(pattern);
  const auto restriction_sets = generate_restriction_sets(pattern);
  std::cout << generated.phase1.size() << " phase-1 schedules, "
            << generated.efficient.size() << " efficient (k=" << generated.k
            << "), " << restriction_sets.size() << " restriction sets\n";

  struct Row {
    std::string schedule;
    std::string restrictions;
    double predicted;
    double measured;
    Count embeddings;
  };
  std::vector<Row> rows;
  for (const auto& sched : generated.efficient) {
    const Configuration config = best_configuration_for_schedule(
        pattern, sched, restriction_sets, stats);
    support::Timer timer;
    const Count n = Matcher(graph, config).count();
    rows.push_back({sched.to_string(), to_string(config.restrictions),
                    config.predicted_cost, timer.elapsed_seconds(), n});
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.measured < b.measured; });

  support::Table table(
      {"rank", "schedule", "restrictions", "predicted", "measured(s)"});
  const std::size_t shown = std::min<std::size_t>(rows.size(), 15);
  for (std::size_t i = 0; i < shown; ++i)
    table.add(i + 1, rows[i].schedule, rows[i].restrictions,
              rows[i].predicted, rows[i].measured);
  table.print();
  if (rows.size() > shown)
    std::cout << "(" << rows.size() - shown << " more schedules omitted)\n";

  // Where did the model's pick land?
  const auto selected = std::min_element(
      rows.begin(), rows.end(),
      [](const Row& a, const Row& b) { return a.predicted < b.predicted; });
  std::cout << "model-selected schedule " << selected->schedule << " is "
            << selected->measured / std::max(rows.front().measured, 1e-9)
            << "x the oracle time; embeddings = " << selected->embeddings
            << "\n";
  return 0;
}
