// Motif census: counts every connected k-vertex pattern (k = 3..5) on a
// social-network stand-in — the Motif Counting workload the paper cites
// as a major IEP beneficiary (Section IV-D: "many graph mining problems,
// such as Clique Counting and Motif Counting, only need ... the number of
// embeddings").
//
// The census runs BATCHED by default: all motif plans are compiled into
// the plan IR, merged into a prefix-sharing forest, and counted in one
// traversal of the data graph (GraphPi::count_batch). Pass mode
// "per-pattern" to run the historical one-schedule-per-motif loop, or
// "compare" to time both and print the speedup.
//
//   ./motif_census [dataset] [scale] [k] [batch|per-pattern|compare]
//                  [--nodes N] [--partition hash|range] [--task-depth D]
//
// Defaults: mico stand-in at scale 0.3, k = 4, batch. With --nodes N the
// batched census runs on the sharded distributed backend (one sharded
// batch traversal across N logical nodes) and reports the message/byte
// economy of the run.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/graphpi.h"
#include "core/automorphism.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace graphpi;

/// The pre-batch census: replan and rescan the data graph once per motif.
std::vector<Count> per_pattern_census(const GraphPi& engine,
                                      const std::vector<Pattern>& motifs) {
  std::vector<Count> counts;
  counts.reserve(motifs.size());
  for (const Pattern& motif : motifs)
    counts.push_back(engine.count(motif, MatchOptions{}));
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graphpi;

  int nodes = 0;  // 0 = in-process serial batch
  int task_depth = 1;
  dist::PartitionStrategy partition = dist::PartitionStrategy::kHash;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nodes" && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (arg == "--task-depth" && i + 1 < argc) {
      task_depth = std::atoi(argv[++i]);
    } else if (arg.rfind("--partition=", 0) == 0) {
      if (!dist::parse_partition(arg.substr(12), partition)) {
        std::cerr << "unknown partition strategy: " << arg << "\n";
        return 1;
      }
    } else if (arg == "--partition" && i + 1 < argc) {
      if (!dist::parse_partition(argv[++i], partition)) {
        std::cerr << "unknown partition strategy: " << argv[i] << "\n";
        return 1;
      }
    } else {
      positional.push_back(arg);
    }
  }
  const std::string dataset = positional.size() > 0 ? positional[0] : "mico";
  const double scale =
      positional.size() > 1 ? std::atof(positional[1].c_str()) : 0.3;
  const int k = positional.size() > 2 ? std::atoi(positional[2].c_str()) : 4;
  const std::string mode = positional.size() > 3 ? positional[3] : "batch";
  if (k < 3 || k > 5) {
    std::cerr << "motif size must be 3..5\n";
    return 1;
  }
  if (mode != "batch" && mode != "per-pattern" && mode != "compare") {
    std::cerr << "mode must be batch, per-pattern or compare\n";
    return 1;
  }

  const Graph graph = datasets::load(dataset, scale);
  std::cout << "dataset " << dataset << " (scale " << scale << "): "
            << graph.vertex_count() << " vertices, " << graph.edge_count()
            << " edges\n";
  const GraphPi engine(graph);
  const auto motifs = patterns::connected_motifs(k);

  std::vector<Count> counts;
  double batch_seconds = 0.0;
  double per_pattern_seconds = 0.0;

  if (mode != "per-pattern") {
    support::Timer timer;
    const PlanForest forest = engine.plan_batch(motifs);
    MatchOptions batch_options;
    dist::ClusterStats cluster;
    if (nodes > 0) {
      batch_options.backend = Backend::kDistributed;
      batch_options.nodes = nodes;
      batch_options.task_depth = task_depth;
      batch_options.partition = partition;
      batch_options.cluster_stats = &cluster;
    }
    counts = engine.count_batch(forest, batch_options);
    batch_seconds = timer.elapsed_seconds();
    const auto& s = forest.stats();
    std::cout << "batched: " << s.plans << " plans -> " << s.nodes
              << " trie nodes, " << s.extensions << " loops ("
              << s.shared_steps << " shared), " << s.shared_suffix_sets
              << " shared IEP suffix sets\n";
    if (nodes > 0)
      std::cout << "sharded: " << nodes << " nodes ("
                << dist::to_string(partition) << "), tasks "
                << cluster.total_tasks << ", messages " << cluster.messages
                << " (" << cluster.bytes << " B), shipped candidates "
                << cluster.shipped_set_vertices << " vertices, replication "
                << cluster.replication_factor << "\n";
  }
  if (mode != "batch") {
    support::Timer timer;
    const std::vector<Count> reference = per_pattern_census(engine, motifs);
    per_pattern_seconds = timer.elapsed_seconds();
    if (counts.empty()) {
      counts = reference;
    } else {
      // compare mode holds both answers — make it a correctness gate.
      for (std::size_t i = 0; i < motifs.size(); ++i) {
        if (counts[i] != reference[i]) {
          std::cerr << "MISMATCH: motif " << i + 1 << " batched " << counts[i]
                    << " != per-pattern " << reference[i] << "\n";
          return 1;
        }
      }
    }
  }

  support::Table table({"motif", "edges", "|Aut|", "embeddings"});
  Count total = 0;
  for (std::size_t i = 0; i < motifs.size(); ++i) {
    const Pattern& motif = motifs[i];
    total += counts[i];
    table.add("M" + std::to_string(i + 1) + " " + motif.adjacency_string(),
              motif.edge_count(), automorphism_count(motif), counts[i]);
  }
  table.print();
  std::cout << k << "-motif occurrences total: " << total << "\n";
  if (mode != "per-pattern")
    std::cout << "batched census: " << batch_seconds << " s\n";
  if (mode != "batch")
    std::cout << "per-pattern census: " << per_pattern_seconds << " s\n";
  if (mode == "compare" && batch_seconds > 0)
    std::cout << "speedup: " << per_pattern_seconds / batch_seconds << "x\n";
  return 0;
}
