// Motif census: counts every connected k-vertex pattern (k = 3, 4) on a
// social-network stand-in — the Motif Counting workload the paper cites
// as a major IEP beneficiary (Section IV-D: "many graph mining problems,
// such as Clique Counting and Motif Counting, only need ... the number of
// embeddings").
//
//   ./motif_census [dataset] [scale] [k]
//
// Defaults: mico stand-in at scale 0.3, k = 4.
#include <cstdlib>
#include <iostream>
#include <string>

#include "api/graphpi.h"
#include "core/automorphism.h"
#include "support/table.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;

  const std::string dataset = argc > 1 ? argv[1] : "mico";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.3;
  const int k = argc > 3 ? std::atoi(argv[3]) : 4;
  if (k < 3 || k > 5) {
    std::cerr << "motif size must be 3..5\n";
    return 1;
  }

  const Graph graph = datasets::load(dataset, scale);
  std::cout << "dataset " << dataset << " (scale " << scale << "): "
            << graph.vertex_count() << " vertices, " << graph.edge_count()
            << " edges\n";
  const GraphPi engine(graph);

  support::Table table(
      {"motif", "edges", "|Aut|", "embeddings", "time(s)", "iep k"});
  const auto motifs = patterns::connected_motifs(k);
  Count total = 0;
  for (std::size_t i = 0; i < motifs.size(); ++i) {
    const Pattern& motif = motifs[i];
    const Configuration config = engine.plan(motif);
    support::Timer timer;
    const Count n = engine.count(config, MatchOptions{});
    total += n;
    table.add("M" + std::to_string(i + 1) + " " + motif.adjacency_string(),
              motif.edge_count(), automorphism_count(motif), n,
              timer.elapsed_seconds(), config.iep.k);
  }
  table.print();
  std::cout << k << "-motif occurrences total: " << total << "\n";
  return 0;
}
