// Shared helpers for the experiment harnesses.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (Section V) on the synthetic dataset stand-ins (DESIGN.md
// documents the substitution). Absolute numbers differ from the paper's
// Tianhe-2A measurements by construction; the *shape* — who wins and by
// roughly what factor — is the reproduction target recorded in
// EXPERIMENTS.md.
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <optional>
#include <string>

#include "core/configuration.h"
#include "engine/matcher.h"
#include "graph/datasets.h"
#include "graph/graph.h"
#include "support/metrics.h"
#include "support/timer.h"

namespace graphpi::bench {

/// Per-dataset scale factors calibrated so the full default bench suite
/// finishes on one core in minutes. Pass a multiplier as argv[1] to grow
/// or shrink every workload (e.g. `./fig08_overall 2.0`).
inline double calibrated_scale(const std::string& dataset) {
  // Stand-in sizes in datasets.cpp are already budget-calibrated.
  (void)dataset;
  return 1.0;
}

/// Global multiplier from argv (default 1.0).
inline double scale_multiplier(int argc, char** argv) {
  return argc > 1 ? std::atof(argv[1]) : 1.0;
}

/// Loads a dataset at its calibrated bench scale times `mult`.
inline Graph bench_graph(const std::string& dataset, double mult) {
  return datasets::load(dataset, calibrated_scale(dataset) * mult);
}

/// Times a callable once, returning seconds.
template <typename F>
double time_once(F&& fn) {
  support::Timer t;
  std::forward<F>(fn)();
  return t.elapsed_seconds();
}

/// Result of a budgeted counting run: seconds + count when the run
/// finished inside the budget, nullopt when it was cut off (rendered as
/// the paper's "T").
struct BudgetedRun {
  std::optional<double> seconds;
  Count count = 0;
};

/// Counts embeddings with a wall-clock budget by decomposing the run into
/// depth-1 prefix tasks and checking the clock between tasks (overshoot
/// is bounded by one root subtree). Exact when it completes.
inline BudgetedRun count_with_budget(const Matcher& matcher,
                                     double budget_seconds) {
  struct BudgetExceeded {};
  support::Timer t;
  Count total = 0;
  // Separate workspaces: the generator's traversal is live while each
  // task's continuation runs.
  Matcher::Workspace gen_ws, task_ws;
  try {
    matcher.enumerate_prefixes(gen_ws, 1, [&](std::span<const VertexId> p) {
      total += matcher.count_from_prefix(task_ws, p);
      if (t.elapsed_seconds() > budget_seconds) throw BudgetExceeded{};
    });
  } catch (const BudgetExceeded&) {
    return {};
  }
  return {t.elapsed_seconds(), matcher.finalize_partial_counts(total)};
}

/// Budgeted plain-enumeration count for a configuration (strips any IEP
/// plan first).
inline BudgetedRun count_plain_with_budget(const Graph& g,
                                           Configuration config,
                                           double budget_seconds) {
  config.iep = IepPlan{};
  return count_with_budget(Matcher(g, config), budget_seconds);
}

/// Formats a measurement; nullopt renders as "T" — the paper's marker for
/// runs exceeding the time budget.
inline std::string fmt_time(std::optional<double> seconds) {
  if (!seconds.has_value()) return "T";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", *seconds);
  return buf;
}

inline std::string fmt_speedup(std::optional<double> x) {
  if (!x.has_value()) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", *x);
  return buf;
}

/// Prints the standard bench banner.
inline void banner(const std::string& experiment, const std::string& what) {
  std::cout << "==== " << experiment << " — " << what << " ====\n";
}

/// JSON snapshot of the process-wide metrics registry, for embedding in
/// BENCH_* files so a bench run records what the engine actually did
/// (memo hit rates, JIT compiles, message volume) next to its timings.
inline std::string metrics_snapshot_json() {
  return support::metrics::Registry::instance().snapshot().to_json();
}

}  // namespace graphpi::bench
