// Generated-kernel vs interpreted counting on the R-MAT reference input
// (the same graph micro_kernels and motif_batch use).
//
// Four arms per pattern: the serial interpreter (Matcher), the serial
// generated kernel (threads = 1), the interpreted OpenMP engine
// (count_parallel), and the parallel generated kernel — the latter two
// at the same worker count (>= 4), so `<p>/generated_parallel` vs
// `<p>/interpreted_parallel` is the headline generated-vs-interpreted
// comparison at full concurrency. Kernels are warmed before timing, so
// the records compare steady-state execution; the one-time compile cost
// is reported as its own `<pattern>/jit_compile` record (ns_per_op =
// wall time of the cold KernelCache::get).
//
// A fifth arm per pattern, `<p>/generated_parallel_armed`, reruns the
// parallel generated kernel with a far-future deadline armed: the stop
// never fires, so the delta against `<p>/generated_parallel` is the cost
// of the cooperative cancellation polling itself, reported per pattern
// in the top-level `cancel_poll_overhead` JSON map (relative, 0.01 = 1%).
//
// Two more arms per pattern, `<p>/generated_parallel_metrics_{on,off}`,
// pair the same kernel with the metrics layer (support/metrics.h) enabled
// vs disabled; the relative cost lands in the top-level
// `metrics_overhead` JSON map — the CI guard asserts it stays under 2%.
//
// `codegen_jit --json [path]` writes the micro_kernels record schema —
// {name, ns_per_op, elements_per_s} — to `path` (default
// BENCH_codegen.json) plus the active/detected ISA and worker count, so
// BENCH_* files record which dispatch path ran, and a `metrics` object
// embedding the end-of-run registry snapshot.
#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/graphpi.h"
#include "bench_util.h"
#include "engine/jit.h"
#include "graph/generators.h"
#include "support/metrics.h"
#include "support/timer.h"

namespace {

using namespace graphpi;

Graph bench_rmat() { return rmat(10, 14000, 17); }

struct Record {
  std::string name;
  double ns_per_op = 0.0;
  double elements_per_s = 0.0;
};

/// Times one run repeatedly (at least 3 runs or 1 s) keeping the fastest.
template <typename Run>
Record time_run(const std::string& name, Run&& run) {
  double best = -1.0;
  Count embeddings = 0;
  double total = 0.0;
  for (int rep = 0; rep < 3 || total < 1.0; ++rep) {
    support::Timer t;
    const Count count = run();
    const double seconds = t.elapsed_seconds();
    total += seconds;
    if (best < 0 || seconds < best) {
      best = seconds;
      embeddings = count;
    }
    if (rep >= 9) break;
  }
  Record r;
  r.name = name;
  r.ns_per_op = best * 1e9;
  r.elements_per_s =
      best > 0 ? static_cast<double>(embeddings) / best : 0.0;
  return r;
}

/// Interleaved paired timing: alternates the two runs rep-by-rep so both
/// sides sample the same cache/frequency conditions, keeping each side's
/// fastest rep for the records. The headline `ratio` (B time / A time) is
/// the POOLED ratio — total B time over total A time across every
/// interleaved pair. Interleaving cancels slow machine drift (both arms
/// see the same conditions within a pair), and pooling averages scheduler
/// jitter over the whole measurement instead of sampling it: a median of
/// a handful of per-pair ratios cannot resolve a sub-2% effect when each
/// rep of a long oversubscribed run carries multi-percent noise.
struct Paired {
  Record a;
  Record b;
  double ratio = 1.0;
};

template <typename RunA, typename RunB>
Paired time_run_paired(const std::string& name_a, RunA&& run_a,
                       const std::string& name_b, RunB&& run_b) {
  double best_a = -1.0;
  double best_b = -1.0;
  Count embeddings = 0;
  double total = 0.0;
  double total_a = 0.0;
  double total_b = 0.0;
  for (int rep = 0; rep < 7 || total < 4.0; ++rep) {
    support::Timer ta;
    const Count count = run_a();
    const double sa = ta.elapsed_seconds();
    support::Timer tb;
    (void)run_b();
    const double sb = tb.elapsed_seconds();
    total += sa + sb;
    total_a += sa;
    total_b += sb;
    if (best_a < 0 || sa < best_a) {
      best_a = sa;
      embeddings = count;
    }
    if (best_b < 0 || sb < best_b) best_b = sb;
    if (rep >= 19) break;
  }
  Paired p;
  p.a.name = name_a;
  p.a.ns_per_op = best_a * 1e9;
  p.a.elements_per_s =
      best_a > 0 ? static_cast<double>(embeddings) / best_a : 0.0;
  p.b.name = name_b;
  p.b.ns_per_op = best_b * 1e9;
  p.b.elements_per_s =
      best_b > 0 ? static_cast<double>(embeddings) / best_b : 0.0;
  if (total_a > 0) p.ratio = total_b / total_a;
  return p;
}

/// Worker count for the parallel arms: every hardware thread, but at
/// least the 4 the acceptance target names (oversubscription is fine for
/// a correctness-identical comparison on small boxes).
int parallel_threads() { return std::max(4, omp_get_max_threads()); }

/// One suite run: the timing records plus the per-pattern relative cost
/// of arming a (never-firing) deadline on the parallel generated kernel —
/// the price of the cooperative-stop polling itself.
struct Suite {
  std::vector<Record> records;
  std::vector<std::pair<std::string, double>> poll_overhead;
  /// Per-pattern relative cost of running with the metrics layer enabled
  /// vs disabled (support/metrics.h) on the parallel generated kernel —
  /// the price of the observability instrumentation itself.
  std::vector<std::pair<std::string, double>> metrics_overhead;
};

Suite run_suite(bool verbose) {
  const Graph graph = bench_rmat();
  const GraphPi engine(graph);
  Suite suite;
  std::vector<Record>& records = suite.records;
  const int threads = parallel_threads();

  MatchOptions generated_serial;
  generated_serial.backend = Backend::kGenerated;
  generated_serial.threads = 1;
  MatchOptions generated_parallel = generated_serial;
  generated_parallel.threads = threads;
  MatchOptions interpreted_parallel;
  interpreted_parallel.backend = Backend::kParallel;
  interpreted_parallel.threads = threads;
  // Far-future deadline: the stop never fires, but every worker runs the
  // per-stride cancel poll and the host runs its watchdog thread.
  MatchOptions generated_parallel_armed = generated_parallel;
  generated_parallel_armed.timeout_ms = 1e12;

  const std::pair<const char*, Pattern> cases[] = {
      {"house", patterns::house()},
      {"pentagon", patterns::pentagon()},
      {"rectangle", patterns::rectangle()},
      {"clique4", patterns::clique(4)},
  };
  for (const auto& [name, pattern] : cases) {
    const std::string prefix = name;
    const Configuration config = engine.plan(pattern);

    // Cold compile cost (a disk-cached kernel makes this ~dlopen time).
    support::Timer compile_timer;
    const Count warm = engine.count(config, generated_serial);
    Record compile_rec;
    compile_rec.name = prefix + "/jit_compile";
    compile_rec.ns_per_op = compile_timer.elapsed_seconds() * 1e9;
    records.push_back(compile_rec);

    records.push_back(time_run(prefix + "/interpreted", [&] {
      return engine.count(config, MatchOptions{});
    }));
    records.push_back(time_run(prefix + "/generated", [&] {
      return engine.count(config, generated_serial);
    }));
    records.push_back(time_run(prefix + "/interpreted_parallel", [&] {
      return engine.count(config, interpreted_parallel);
    }));
    const Paired paired = time_run_paired(
        prefix + "/generated_parallel",
        [&] { return engine.count(config, generated_parallel); },
        prefix + "/generated_parallel_armed",
        [&] { return engine.count(config, generated_parallel_armed); });
    records.push_back(paired.a);
    records.push_back(paired.b);

    const double overhead = paired.ratio - 1.0;
    suite.poll_overhead.emplace_back(prefix, overhead);

    // Metrics-layer cost: the same kernel with the observability layer
    // enabled (histograms + trace spans live) vs disabled (counters only,
    // one relaxed increment per flush). ratio = disabled/enabled, so the
    // enabled-over-disabled overhead is 1/ratio - 1.
    const bool metrics_were_enabled = support::metrics::enabled();
    const Paired metrics_paired = time_run_paired(
        prefix + "/generated_parallel_metrics_on",
        [&] {
          support::metrics::set_enabled(true);
          return engine.count(config, generated_parallel);
        },
        prefix + "/generated_parallel_metrics_off",
        [&] {
          support::metrics::set_enabled(false);
          return engine.count(config, generated_parallel);
        });
    support::metrics::set_enabled(metrics_were_enabled);
    records.push_back(metrics_paired.a);
    records.push_back(metrics_paired.b);
    const double metrics_cost =
        metrics_paired.ratio > 0 ? 1.0 / metrics_paired.ratio - 1.0 : 0.0;
    suite.metrics_overhead.emplace_back(prefix, metrics_cost);

    // Bound after the last push_back: push_back may reallocate.
    const Record& interp = records[records.size() - 7];
    const Record& gen = records[records.size() - 6];
    const Record& interp_par = records[records.size() - 5];
    const Record& gen_par = records[records.size() - 4];
    if (verbose) {
      std::printf(
          "%-10s %12llu embeddings: interpreted %8.2f ms, generated "
          "%8.2f ms -> %.2fx | %d threads: interpreted %8.2f ms, "
          "generated %8.2f ms -> %.2fx | poll overhead %+.2f%% | "
          "metrics overhead %+.2f%%\n",
          name, static_cast<unsigned long long>(warm),
          interp.ns_per_op / 1e6, gen.ns_per_op / 1e6,
          interp.ns_per_op / gen.ns_per_op, threads,
          interp_par.ns_per_op / 1e6, gen_par.ns_per_op / 1e6,
          interp_par.ns_per_op / gen_par.ns_per_op, overhead * 100.0,
          metrics_cost * 100.0);
    }
  }
  return suite;
}

int write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  const Suite suite = run_suite(/*verbose=*/false);
  const std::vector<Record>& records = suite.records;
  const auto stats = jit::KernelCache::instance().stats();
  std::fprintf(f,
               "{\n  \"input\": \"rmat(10, 14000, 17)\",\n"
               "  \"active_isa\": \"%s\",\n  \"detected_isa\": \"%s\",\n"
               "  \"parallel_threads\": %d,\n"
               "  \"compiler_available\": %s,\n"
               "  \"kernels_compiled\": %llu,\n",
               active_isa(), detected_isa(), parallel_threads(),
               jit::compiler_available() ? "true" : "false",
               static_cast<unsigned long long>(stats.compiles));
  std::fprintf(f, "  \"cancel_poll_overhead\": {");
  for (std::size_t i = 0; i < suite.poll_overhead.size(); ++i)
    std::fprintf(f, "%s\"%s\": %.6f", i ? ", " : "",
                 suite.poll_overhead[i].first.c_str(),
                 suite.poll_overhead[i].second);
  std::fprintf(f, "},\n  \"metrics_overhead\": {");
  for (std::size_t i = 0; i < suite.metrics_overhead.size(); ++i)
    std::fprintf(f, "%s\"%s\": %.6f", i ? ", " : "",
                 suite.metrics_overhead[i].first.c_str(),
                 suite.metrics_overhead[i].second);
  std::fprintf(f, "},\n  \"metrics\": %s,\n  \"results\": [\n",
               bench::metrics_snapshot_json().c_str());
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"elements_per_s\": %.3e}%s\n",
                 records[i].name.c_str(), records[i].ns_per_op,
                 records[i].elements_per_s,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu codegen records to %s\n", records.size(),
              path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!jit::compiler_available()) {
    std::fprintf(stderr,
                 "codegen_jit: no system compiler found; the generated arm "
                 "would silently measure the interpreter. Aborting.\n");
    return 1;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_codegen.json";
      return write_json(path);
    }
  }
  (void)run_suite(/*verbose=*/true);
  return 0;
}
