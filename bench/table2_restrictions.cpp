// Table II — speedup from GraphPi's restriction-set selection: for P1,
// P2, P4 on Wiki-Vote and Patents, run every generated schedule twice —
// once with the restriction set GraphPi's model picks for that schedule,
// once with GraphZero's single set — and report the average and maximum
// speedup over the schedules where the two differ.
//
// Expected shape: averages around 1.5-2.5x, maxima up to several x
// (paper: up to 7.82x).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/graphzero.h"
#include "engine/matcher.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Table II",
                "better restriction sets at identical schedules");

  support::Table table({"graph", "pattern", "schedules", "differing",
                        "avg speedup", "max speedup"});

  for (const char* name : {"wiki_vote", "patents"}) {
    const Graph g = bench::bench_graph(name, mult);
    const GraphStats stats = GraphStats::of(g);
    for (int i : {1, 2, 4}) {
      const Pattern p = patterns::evaluation_pattern(i);
      const auto generated = generate_schedules(p);
      const auto sets = generate_restriction_sets(p);
      const RestrictionSet gz_set = graphzero::restriction_set(p);

      double speedup_sum = 0.0, speedup_max = 0.0;
      int differing = 0;
      constexpr int kMaxMeasured = 16;  // keeps the sweep budgeted
      for (const auto& sched : generated.efficient) {
        if (differing >= kMaxMeasured) break;
        const Configuration best =
            best_configuration_for_schedule(p, sched, sets, stats);
        if (best.restrictions == gz_set) continue;  // same choice
        ++differing;

        Configuration gz_config = best;
        gz_config.restrictions = gz_set;

        constexpr double kPairBudgetSeconds = 3.0;
        const bench::BudgetedRun run_best =
            bench::count_plain_with_budget(g, best, kPairBudgetSeconds);
        const bench::BudgetedRun run_gz = bench::count_plain_with_budget(
            g, gz_config, 2 * kPairBudgetSeconds);
        if (!run_best.seconds.has_value()) continue;  // out of budget
        if (run_gz.seconds.has_value() && run_best.count != run_gz.count) {
          std::cerr << "BUG: restriction sets disagree on counts\n";
          return 1;
        }
        const double gz_secs =
            run_gz.seconds.value_or(2 * kPairBudgetSeconds);
        const double speedup = gz_secs / std::max(*run_best.seconds, 1e-9);
        speedup_sum += speedup;
        speedup_max = std::max(speedup_max, speedup);
      }
      table.add(name, "P" + std::to_string(i), generated.efficient.size(),
                differing,
                differing > 0 ? speedup_sum / differing : 1.0,
                differing > 0 ? speedup_max : 1.0);
    }
  }
  table.print();
  std::cout << "(speedup = GraphZero-set time / GraphPi-set time at the "
               "same schedule)\n";
  return 0;
}
