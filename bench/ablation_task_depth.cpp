// Ablation — task granularity (Section IV-E: "the number of outer loops
// executed by the master thread depends on the complexity of the
// pattern"). Deeper task prefixes mean more, smaller tasks: better load
// balance at higher task-management cost. Measured through the cluster
// simulator on real per-task costs.
#include <iostream>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "dist/simulator.h"
#include "engine/matcher.h"
#include "support/table.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Ablation", "distributed task granularity (task depth)");

  const Graph g = bench::bench_graph("orkut", mult);
  const GraphStats stats = GraphStats::of(g);
  const Pattern p = patterns::evaluation_pattern(1);
  PlannerOptions planner;
  planner.use_iep = true;
  const Configuration config = plan_configuration(p, stats, planner);
  const Matcher matcher(g, config);

  support::Table table({"task depth", "tasks", "max task share",
                        "speedup@16", "speedup@64", "speedup@256"});
  const int max_depth =
      config.pattern.size() - config.iep.k;  // outer loops only
  for (int depth = 1; depth <= std::min(3, max_depth); ++depth) {
    std::vector<double> costs;
    Matcher::Workspace gen_ws, task_ws;
    matcher.enumerate_prefixes(
        gen_ws, depth, [&](std::span<const VertexId> prefix) {
          support::Timer t;
          (void)matcher.count_from_prefix(task_ws, prefix);
          costs.push_back(t.elapsed_seconds());
        });
    double total = 0.0, biggest = 0.0;
    for (double c : costs) {
      total += c;
      biggest = std::max(biggest, c);
    }
    auto speedup = [&costs](int nodes) {
      return dist::simulate_cluster(costs, nodes).speedup_vs_serial();
    };
    table.add(depth, costs.size(),
              total > 0 ? biggest / total : 0.0, speedup(16), speedup(64),
              speedup(256));
  }
  table.print();
  std::cout << "(max task share bounds achievable speedup: share s caps "
               "speedup at 1/s)\n";
  return 0;
}
