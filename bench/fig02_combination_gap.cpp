// Figure 2(b) — the motivating observation: different combinations of
// schedules and restriction sets for the *same* pattern differ by large
// factors (the paper measures 23.2x between the best and worst of four
// House combinations on Patents).
//
// We reproduce the grid: two schedules of the House pattern crossed with
// two single-restriction options derived from its automorphism (mirror)
// symmetry, plus the full model-selected configuration for reference.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Figure 2(b)",
                "schedule x restriction combinations of the House");

  const Pattern house = patterns::house();
  const Graph g = bench::bench_graph("patents", mult);
  const GraphStats stats = GraphStats::of(g);

  // All generated restriction sets and a representative schedule pair:
  // the model's best schedule and a deliberately different phase-1
  // schedule (the paper's A,C,B,D,E-style alternative).
  const auto sets = generate_restriction_sets(house);
  const auto generated = generate_schedules(house);
  const Configuration best = plan_configuration(house, stats);
  Schedule alt = generated.efficient.back();
  if (alt == best.schedule && generated.efficient.size() > 1)
    alt = generated.efficient.front();

  support::Table table(
      {"schedule", "restrictions", "predicted", "measured(s)", "vs best"});
  double fastest = 1e100;
  struct Row {
    std::string sched, rs;
    double predicted, measured;
  };
  std::vector<Row> rows;
  Count reference = 0;
  for (const Schedule& sched : {best.schedule, alt}) {
    for (const auto& rs : sets) {
      Configuration config;
      config.pattern = house;
      config.schedule = sched;
      config.restrictions = rs;
      config.predicted_cost =
          predict_total_cost(house, sched, rs, stats);
      constexpr double kComboBudgetSeconds = 8.0;
      const bench::BudgetedRun run =
          bench::count_plain_with_budget(g, config, kComboBudgetSeconds);
      if (run.seconds.has_value()) {
        if (reference == 0) reference = run.count;
        if (run.count != reference) {
          std::cerr << "BUG: combination changed the count\n";
          return 1;
        }
      }
      const double secs = run.seconds.value_or(kComboBudgetSeconds);
      fastest = std::min(fastest, secs);
      rows.push_back({sched.to_string(), to_string(rs),
                      config.predicted_cost, secs});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.measured < b.measured; });
  for (const auto& r : rows)
    table.add(r.sched, r.rs, r.predicted, r.measured,
              bench::fmt_speedup(r.measured / std::max(fastest, 1e-9)));
  table.print();
  std::cout << "best-to-worst gap: "
            << rows.back().measured / std::max(fastest, 1e-9)
            << "x (paper: 23.2x across its four combinations)\n";
  return 0;
}
