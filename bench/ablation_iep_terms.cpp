// Ablation — IEP term evaluation strategy (DESIGN.md design choice):
// the paper's Section IV-D sum enumerates all 2^(k(k-1)/2) collision-pair
// subsets; GraphPi-the-library folds subsets with identical component
// partitions into one Möbius-weighted term (at most Bell(k) terms). Both
// are exact; this bench quantifies the evaluation-cost difference.
#include <iostream>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/iep.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Ablation", "IEP term aggregation (partition Moebius fold)");

  support::Table table({"pattern", "k", "terms verbatim", "terms folded",
                        "verbatim(s)", "folded(s)", "speedup"});

  struct Workload {
    const char* name;
    Pattern pattern;
    const char* graph;
  };
  const Workload workloads[] = {
      {"house", patterns::house(), "patents"},
      {"cycle_6_tri", patterns::cycle_6_tri(), "mico"},
      {"P2", patterns::evaluation_pattern(2), "wiki_vote"},
  };

  for (const auto& w : workloads) {
    const Graph g = bench::bench_graph(w.graph, mult);
    PlannerOptions planner;
    planner.use_iep = true;
    Configuration folded = plan_configuration(w.pattern, GraphStats::of(g),
                                              planner);
    if (folded.iep.k == 0) continue;

    Configuration verbatim = folded;
    verbatim.iep =
        build_iep_plan(w.pattern, folded.schedule, folded.restrictions,
                       folded.iep.k, /*aggregate_partitions=*/false);

    Count n_folded = 0, n_verbatim = 0;
    const double folded_secs = bench::time_once(
        [&] { n_folded = Matcher(g, folded).count(); });
    const double verbatim_secs = bench::time_once(
        [&] { n_verbatim = Matcher(g, verbatim).count(); });
    if (n_folded != n_verbatim) {
      std::cerr << "BUG: term strategies disagree\n";
      return 1;
    }
    table.add(w.name, folded.iep.k, verbatim.iep.terms.size(),
              folded.iep.terms.size(), verbatim_secs, folded_secs,
              bench::fmt_speedup(verbatim_secs /
                                 std::max(folded_secs, 1e-9)));
  }
  table.print();
  return 0;
}
