// Table III — preprocessing and code-generation overhead per pattern:
// restriction-set generation (Algorithm 1), schedule generation + the
// performance model sweep, and C++ code emission. The paper reports 8 ms
// (P1) to 2.53 s (P6); the overhead depends only on the pattern, not on
// the data graph.
#include <iostream>

#include "bench_util.h"
#include "codegen/codegen.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "support/table.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  (void)argc;
  (void)argv;
  bench::banner("Table III", "preprocessing + codegen overhead (seconds)");

  // Any statistics work; the overhead is data-graph independent. Use the
  // wiki_vote stand-in statistics as the paper's setting.
  const Graph g = bench::bench_graph("wiki_vote", 1.0);
  const GraphStats stats = GraphStats::of(g);

  support::Table table({"pattern", "restr gen", "sched+model", "codegen",
                        "total", "configs evaluated"});
  for (int i = 1; i <= 6; ++i) {
    const Pattern p = patterns::evaluation_pattern(i);

    support::Timer t;
    const auto sets = generate_restriction_sets(p);
    const double restr_secs = t.elapsed_seconds();

    PlanningStats diag;
    t.reset();
    Configuration config =
        plan_configuration(p, stats, PlannerOptions{}, &diag);
    const double plan_secs = t.elapsed_seconds();

    t.reset();
    const std::string source = codegen::generate_source(config);
    const double codegen_secs = t.elapsed_seconds();

    table.add("P" + std::to_string(i), restr_secs, plan_secs, codegen_secs,
              restr_secs + plan_secs + codegen_secs,
              diag.configurations_evaluated);
    (void)sets;
    (void)source;
  }
  table.print();
  std::cout << "(paper range: 0.008s for P1 to 2.53s for P6)\n";
  return 0;
}
