// Figure 8 — overall performance: GraphPi vs the reproduced GraphZero vs
// the restriction-free enumerator (the paper's Fractal-class baseline),
// for patterns P1..P6 on five dataset stand-ins, all without IEP (the
// paper's single-node comparison protocol).
//
// Every cell runs under a wall-clock budget; "T" marks cut-off runs, the
// same convention the paper uses for >48h workloads. Expected shape:
// GraphPi <= GraphZero << naive everywhere, with the gap growing on
// larger/denser graphs and more symmetric patterns.
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "core/automorphism.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/graphzero.h"
#include "engine/matcher.h"
#include "engine/naive.h"
#include "support/table.h"

namespace {
constexpr double kCellBudgetSeconds = 8.0;
}

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Figure 8",
                "overall single-node performance, no IEP (seconds)");

  const char* graphs[] = {"wiki_vote", "mico", "patents", "livejournal",
                          "orkut"};
  support::Table table({"graph", "pattern", "embeddings", "graphpi",
                        "graphzero", "naive", "gz/gp", "naive/gp"});

  for (const char* name : graphs) {
    const Graph g = bench::bench_graph(name, 0.55 * mult);
    const GraphStats stats = GraphStats::of(g);
    for (int i = 1; i <= 6; ++i) {
      const Pattern p = patterns::evaluation_pattern(i);

      // GraphPi: full pipeline, plain enumeration (no IEP).
      const Configuration gp_config =
          plan_configuration(p, stats, PlannerOptions{});
      const bench::BudgetedRun gp =
          bench::count_with_budget(Matcher(g, gp_config),
                                   kCellBudgetSeconds);

      // GraphZero reproduction: its schedule + its single restriction
      // set. Only attempted when GraphPi finished (it is the faster
      // system; a timed-out GraphPi implies a timed-out GraphZero).
      bench::BudgetedRun gz;
      if (gp.seconds.has_value()) {
        const Configuration gz_config = graphzero::plan(p, stats);
        gz = bench::count_with_budget(Matcher(g, gz_config),
                                      2 * kCellBudgetSeconds);
        if (gz.seconds.has_value() && gz.count != gp.count) {
          std::cerr << "BUG: GraphZero disagreement on " << name << " P"
                    << i << "\n";
          return 1;
        }
      }

      // Naive baseline: |Aut|-fold redundant enumeration.
      bench::BudgetedRun naive;
      if (gp.seconds.has_value()) {
        Configuration naive_config;
        naive_config.pattern = p;
        naive_config.schedule = default_schedule(p);
        naive = bench::count_with_budget(Matcher(g, naive_config),
                                         2 * kCellBudgetSeconds);
        if (naive.seconds.has_value()) {
          const Count aut = automorphism_count(p);
          if (naive.count != gp.count * aut) {
            std::cerr << "BUG: naive disagreement on " << name << " P" << i
                      << "\n";
            return 1;
          }
        }
      }

      auto ratio = [&gp](const bench::BudgetedRun& x) {
        return (gp.seconds.has_value() && x.seconds.has_value())
                   ? std::optional<double>(*x.seconds /
                                           std::max(*gp.seconds, 1e-9))
                   : std::nullopt;
      };
      table.add(name, "P" + std::to_string(i),
                gp.seconds.has_value() ? std::to_string(gp.count)
                                       : std::string("-"),
                bench::fmt_time(gp.seconds), bench::fmt_time(gz.seconds),
                bench::fmt_time(naive.seconds),
                bench::fmt_speedup(ratio(gz)),
                bench::fmt_speedup(ratio(naive)));
    }
  }
  table.print();
  std::cout << "(per-cell budget " << kCellBudgetSeconds
            << "s for GraphPi, 2x for baselines; T = cut off, as in the "
               "paper)\n";
  return 0;
}
