// Micro-benchmarks of the hot kernels (google-benchmark): sorted-set
// intersection variants across size skews, candidate-set construction,
// triangle counting, IEP leaf evaluation, and Algorithm 1.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/configuration.h"
#include "core/pattern_library.h"
#include "core/restriction.h"
#include "engine/matcher.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/triangle.h"
#include "graph/vertex_set.h"
#include "support/rng.h"

namespace {

using namespace graphpi;

std::vector<VertexId> make_sorted(std::size_t n, VertexId universe,
                                  std::uint64_t seed) {
  support::Xoshiro256StarStar rng(seed);
  std::vector<VertexId> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(static_cast<VertexId>(rng.bounded(universe)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_IntersectMerge(benchmark::State& state) {
  const auto a = make_sorted(static_cast<std::size_t>(state.range(0)),
                             1 << 20, 1);
  const auto b = make_sorted(static_cast<std::size_t>(state.range(1)),
                             1 << 20, 2);
  std::vector<VertexId> out;
  for (auto _ : state) {
    intersect(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectMerge)
    ->Args({1000, 1000})
    ->Args({100, 10000})
    ->Args({10, 100000});

void BM_IntersectGallop(benchmark::State& state) {
  const auto a = make_sorted(static_cast<std::size_t>(state.range(0)),
                             1 << 20, 1);
  const auto b = make_sorted(static_cast<std::size_t>(state.range(1)),
                             1 << 20, 2);
  std::vector<VertexId> out;
  for (auto _ : state) {
    intersect_gallop(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectGallop)
    ->Args({1000, 1000})
    ->Args({100, 10000})
    ->Args({10, 100000});

void BM_IntersectAdaptive(benchmark::State& state) {
  const auto a = make_sorted(static_cast<std::size_t>(state.range(0)),
                             1 << 20, 1);
  const auto b = make_sorted(static_cast<std::size_t>(state.range(1)),
                             1 << 20, 2);
  std::vector<VertexId> out;
  for (auto _ : state) {
    intersect_adaptive(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectAdaptive)
    ->Args({1000, 1000})
    ->Args({100, 10000})
    ->Args({10, 100000});

void BM_TriangleCount(benchmark::State& state) {
  const Graph g = clustered_power_law(
      static_cast<VertexId>(state.range(0)),
      static_cast<std::uint64_t>(state.range(0)) * 12, 2.3, 0.4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_triangles(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_TriangleCount)->Arg(2000)->Arg(8000);

void BM_GraphBuild(benchmark::State& state) {
  const Graph src = erdos_renyi(static_cast<VertexId>(state.range(0)),
                                static_cast<std::uint64_t>(state.range(0)) * 8,
                                11);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < src.vertex_count(); ++u)
    for (VertexId v : src.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_graph(src.vertex_count(), edges));
  }
}
BENCHMARK(BM_GraphBuild)->Arg(5000);

void BM_RestrictionGeneration(benchmark::State& state) {
  const Pattern p = patterns::evaluation_pattern(
      static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_restriction_sets(p));
  }
}
BENCHMARK(BM_RestrictionGeneration)->Arg(1)->Arg(3)->Arg(5);

void BM_LinearExtensions(benchmark::State& state) {
  // Worst case: empty poset on 8 elements (counts all 40320 orders).
  const RestrictionSet chain{{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear_extension_count(8, chain));
  }
}
BENCHMARK(BM_LinearExtensions);

void BM_CountHouse(benchmark::State& state) {
  const Graph g = clustered_power_law(1200, 8000, 2.3, 0.4, 13);
  const Configuration config = plan_configuration(
      patterns::house(), GraphStats::of(g), PlannerOptions{});
  const Matcher matcher(g, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.count_plain());
  }
}
BENCHMARK(BM_CountHouse);

void BM_CountHouseIep(benchmark::State& state) {
  const Graph g = clustered_power_law(1200, 8000, 2.3, 0.4, 13);
  PlannerOptions planner;
  planner.use_iep = true;
  const Configuration config =
      plan_configuration(patterns::house(), GraphStats::of(g), planner);
  const Matcher matcher(g, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.count());
  }
}
BENCHMARK(BM_CountHouseIep);

}  // namespace

BENCHMARK_MAIN();
