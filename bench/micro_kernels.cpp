// Micro-benchmarks of the hot kernels: sorted-set intersection variants
// (scalar reference vs the compiled SIMD dispatch, materializing vs
// size-only vs bitmap), candidate-set construction, triangle counting,
// and end-to-end intersection-heavy counting (house / 5-clique on an
// R-MAT graph) with and without the vectorized kernels + hub index.
//
// Two modes:
//   * default: google-benchmark suite (all the usual flags work);
//   * `micro_kernels --json [path]`: self-timed run of the kernel suite
//     that writes machine-readable JSON — one record per kernel with
//     {name, ns_per_op, elements_per_s} — to `path` (default
//     BENCH_micro_kernels.json) so per-PR trajectories can track
//     intersection throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/pattern_library.h"
#include "core/restriction.h"
#include "engine/matcher.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/triangle.h"
#include "graph/vertex_set.h"
#include "support/rng.h"
#include "support/timer.h"

namespace {

using namespace graphpi;

std::vector<VertexId> make_sorted(std::size_t n, VertexId universe,
                                  std::uint64_t seed) {
  support::Xoshiro256StarStar rng(seed);
  std::vector<VertexId> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(static_cast<VertexId>(rng.bounded(universe)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<std::uint64_t> make_bitmap(const std::vector<VertexId>& set,
                                       VertexId universe) {
  std::vector<std::uint64_t> bits((static_cast<std::size_t>(universe) + 63) /
                                  64);
  for (VertexId v : set) bits[v >> 6] |= std::uint64_t{1} << (v & 63);
  return bits;
}

// ---------------------------------------------------------------------------
// google-benchmark suite.
// ---------------------------------------------------------------------------

template <typename Kernel>
void run_pair_bench(benchmark::State& state, Kernel&& kernel) {
  const auto a = make_sorted(static_cast<std::size_t>(state.range(0)),
                             1 << 20, 1);
  const auto b = make_sorted(static_cast<std::size_t>(state.range(1)),
                             1 << 20, 2);
  for (auto _ : state) benchmark::DoNotOptimize(kernel(a, b));
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(a.size() + b.size()));
}

void BM_IntersectScalar(benchmark::State& state) {
  std::vector<VertexId> out;
  run_pair_bench(state, [&out](const auto& a, const auto& b) {
    intersect_scalar(a, b, out);
    return out.data();
  });
}
BENCHMARK(BM_IntersectScalar)
    ->Args({1000, 1000})
    ->Args({100, 10000})
    ->Args({10, 100000});

void BM_IntersectDispatch(benchmark::State& state) {
  std::vector<VertexId> out;
  run_pair_bench(state, [&out](const auto& a, const auto& b) {
    intersect(a, b, out);
    return out.data();
  });
}
BENCHMARK(BM_IntersectDispatch)
    ->Args({1000, 1000})
    ->Args({100, 10000})
    ->Args({10, 100000});

void BM_IntersectSizeScalar(benchmark::State& state) {
  run_pair_bench(state, [](const auto& a, const auto& b) {
    return intersect_size_scalar(a, b);
  });
}
BENCHMARK(BM_IntersectSizeScalar)->Args({1000, 1000})->Args({10000, 10000});

void BM_IntersectSizeDispatch(benchmark::State& state) {
  run_pair_bench(state, [](const auto& a, const auto& b) {
    return intersect_size(a, b);
  });
}
BENCHMARK(BM_IntersectSizeDispatch)->Args({1000, 1000})->Args({10000, 10000});

void BM_IntersectSizeBounded(benchmark::State& state) {
  run_pair_bench(state, [](const auto& a, const auto& b) {
    return intersect_size_bounded(a, b, 1 << 18, 3 << 18);
  });
}
BENCHMARK(BM_IntersectSizeBounded)->Args({1000, 1000})->Args({10000, 10000});

void BM_IntersectGallop(benchmark::State& state) {
  std::vector<VertexId> out;
  run_pair_bench(state, [&out](const auto& a, const auto& b) {
    intersect_gallop(a, b, out);
    return out.data();
  });
}
BENCHMARK(BM_IntersectGallop)
    ->Args({1000, 1000})
    ->Args({100, 10000})
    ->Args({10, 100000});

void BM_IntersectSizeGallop(benchmark::State& state) {
  run_pair_bench(state, [](const auto& a, const auto& b) {
    return intersect_size_gallop(a, b);
  });
}
BENCHMARK(BM_IntersectSizeGallop)->Args({100, 10000})->Args({10, 100000});

void BM_IntersectAdaptive(benchmark::State& state) {
  std::vector<VertexId> out;
  run_pair_bench(state, [&out](const auto& a, const auto& b) {
    intersect_adaptive(a, b, out);
    return out.data();
  });
}
BENCHMARK(BM_IntersectAdaptive)
    ->Args({1000, 1000})
    ->Args({100, 10000})
    ->Args({10, 100000});

void BM_IntersectSizeBitmap(benchmark::State& state) {
  const auto a = make_sorted(static_cast<std::size_t>(state.range(0)),
                             1 << 20, 1);
  const auto b = make_sorted(static_cast<std::size_t>(state.range(1)),
                             1 << 20, 2);
  const auto bits = make_bitmap(b, 1 << 20);
  for (auto _ : state)
    benchmark::DoNotOptimize(intersect_size_bitmap(a, bits.data()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_IntersectSizeBitmap)->Args({1000, 100000})->Args({100, 100000});

void BM_BitmapAndPopcount(benchmark::State& state) {
  const auto a = make_sorted(60000, 1 << 20, 1);
  const auto b = make_sorted(60000, 1 << 20, 2);
  const auto ba = make_bitmap(a, 1 << 20);
  const auto bb = make_bitmap(b, 1 << 20);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        bitmap_and_popcount(ba.data(), bb.data(), ba.size()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ba.size() * 64));
}
BENCHMARK(BM_BitmapAndPopcount);

void BM_TriangleCount(benchmark::State& state) {
  const Graph g = clustered_power_law(
      static_cast<VertexId>(state.range(0)),
      static_cast<std::uint64_t>(state.range(0)) * 12, 2.3, 0.4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_triangles(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_TriangleCount)->Arg(2000)->Arg(8000);

void BM_GraphBuild(benchmark::State& state) {
  const Graph src = erdos_renyi(static_cast<VertexId>(state.range(0)),
                                static_cast<std::uint64_t>(state.range(0)) * 8,
                                11);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < src.vertex_count(); ++u)
    for (VertexId v : src.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_graph(src.vertex_count(), edges));
  }
}
BENCHMARK(BM_GraphBuild)->Arg(5000);

void BM_RestrictionGeneration(benchmark::State& state) {
  const Pattern p = patterns::evaluation_pattern(
      static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_restriction_sets(p));
  }
}
BENCHMARK(BM_RestrictionGeneration)->Arg(1)->Arg(3)->Arg(5);

void BM_LinearExtensions(benchmark::State& state) {
  // Worst case: empty poset on 8 elements (counts all 40320 orders).
  const RestrictionSet chain{{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear_extension_count(8, chain));
  }
}
BENCHMARK(BM_LinearExtensions);

/// R-MAT workload for the end-to-end counting comparisons: heavy-tailed
/// hubs make the intersections large and skewed.
Graph bench_rmat() { return rmat(10, 14000, 17); }

void BM_CountHouseRmat(benchmark::State& state) {
  const bool accelerated = state.range(0) != 0;
  Graph g = bench_rmat();
  if (!accelerated) g.build_hub_index(0xffffffffu);  // empty index
  force_scalar_kernels(!accelerated);
  const Configuration config = plan_configuration(
      patterns::house(), GraphStats::of(g), PlannerOptions{});
  const Matcher matcher(g, config);
  Matcher::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.count_plain(ws));
  }
  force_scalar_kernels(false);
}
BENCHMARK(BM_CountHouseRmat)->Arg(0)->Arg(1);

void BM_CountClique5Rmat(benchmark::State& state) {
  const bool accelerated = state.range(0) != 0;
  Graph g = bench_rmat();
  if (!accelerated) g.build_hub_index(0xffffffffu);
  force_scalar_kernels(!accelerated);
  const Configuration config = plan_configuration(
      patterns::clique(5), GraphStats::of(g), PlannerOptions{});
  const Matcher matcher(g, config);
  Matcher::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.count(ws));
  }
  force_scalar_kernels(false);
}
BENCHMARK(BM_CountClique5Rmat)->Arg(0)->Arg(1);

void BM_CountHouse(benchmark::State& state) {
  const Graph g = clustered_power_law(1200, 8000, 2.3, 0.4, 13);
  const Configuration config = plan_configuration(
      patterns::house(), GraphStats::of(g), PlannerOptions{});
  const Matcher matcher(g, config);
  Matcher::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.count_plain(ws));
  }
}
BENCHMARK(BM_CountHouse);

void BM_CountHouseIep(benchmark::State& state) {
  const Graph g = clustered_power_law(1200, 8000, 2.3, 0.4, 13);
  PlannerOptions planner;
  planner.use_iep = true;
  const Configuration config =
      plan_configuration(patterns::house(), GraphStats::of(g), planner);
  const Matcher matcher(g, config);
  Matcher::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.count(ws));
  }
}
BENCHMARK(BM_CountHouseIep);

// ---------------------------------------------------------------------------
// --json mode: self-timed suite with machine-readable output.
// ---------------------------------------------------------------------------

struct JsonRecord {
  std::string name;
  double ns_per_op = 0.0;
  double elements_per_s = 0.0;
};

/// Times `op` (which returns the number of elements it processed),
/// auto-scaling iterations until the measurement window exceeds ~50 ms.
template <typename Op>
JsonRecord time_kernel(const std::string& name, Op&& op) {
  std::uint64_t iters = 1;
  double seconds = 0.0;
  std::uint64_t elements = 0;
  for (;;) {
    support::Timer t;
    elements = 0;
    for (std::uint64_t i = 0; i < iters; ++i) elements += op();
    seconds = t.elapsed_seconds();
    if (seconds >= 0.05 || iters >= (std::uint64_t{1} << 30)) break;
    iters *= 4;
  }
  JsonRecord r;
  r.name = name;
  r.ns_per_op = seconds * 1e9 / static_cast<double>(iters);
  r.elements_per_s =
      seconds > 0 ? static_cast<double>(elements) / seconds : 0.0;
  return r;
}

int run_json_suite(const std::string& path) {
  // Open the sink first: fail fast instead of after a 30s suite.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::vector<JsonRecord> records;
  std::vector<VertexId> out;

  struct Shape {
    const char* tag;
    std::size_t na, nb;
  };
  const Shape shapes[] = {{"1kx1k", 1000, 1000},
                          {"100x10k", 100, 10000},
                          {"10x100k", 10, 100000},
                          {"10kx10k", 10000, 10000}};
  for (const Shape& s : shapes) {
    const auto a = make_sorted(s.na, 1 << 20, 1);
    const auto b = make_sorted(s.nb, 1 << 20, 2);
    const auto n = a.size() + b.size();
    const std::string suffix = std::string("/") + s.tag;
    records.push_back(time_kernel("intersect_scalar" + suffix, [&] {
      intersect_scalar(a, b, out);
      return n;
    }));
    records.push_back(time_kernel("intersect" + suffix, [&] {
      intersect(a, b, out);
      return n;
    }));
    records.push_back(time_kernel("intersect_size_scalar" + suffix, [&] {
      benchmark::DoNotOptimize(intersect_size_scalar(a, b));
      return n;
    }));
    records.push_back(time_kernel("intersect_size" + suffix, [&] {
      benchmark::DoNotOptimize(intersect_size(a, b));
      return n;
    }));
    records.push_back(time_kernel("intersect_size_adaptive" + suffix, [&] {
      benchmark::DoNotOptimize(intersect_size_adaptive(a, b));
      return n;
    }));
    records.push_back(
        time_kernel("intersect_size_bounded" + suffix, [&] {
          benchmark::DoNotOptimize(
              intersect_size_bounded(a, b, 1 << 18, 3 << 18));
          return n;
        }));
    const auto bits = make_bitmap(b, 1 << 20);
    records.push_back(time_kernel("intersect_size_bitmap" + suffix, [&] {
      benchmark::DoNotOptimize(intersect_size_bitmap(a, bits.data()));
      return a.size();
    }));
  }

  {
    const auto a = make_sorted(60000, 1 << 20, 1);
    const auto b = make_sorted(60000, 1 << 20, 2);
    const auto ba = make_bitmap(a, 1 << 20);
    const auto bb = make_bitmap(b, 1 << 20);
    records.push_back(time_kernel("bitmap_and_popcount/1Mbit", [&] {
      benchmark::DoNotOptimize(
          bitmap_and_popcount(ba.data(), bb.data(), ba.size()));
      return ba.size() * 64;
    }));
  }

  // End-to-end intersection-heavy counting: scalar baseline (merge
  // kernels, no hub index — the seed's configuration) vs the vectorized
  // dispatch + hub bitmaps. elements_per_s reports embeddings/s.
  const auto count_case = [&records](const std::string& name,
                                     const Pattern& pattern, bool use_iep,
                                     bool accelerated) {
    Graph g = bench_rmat();
    if (!accelerated) g.build_hub_index(0xffffffffu);
    force_scalar_kernels(!accelerated);
    PlannerOptions planner;
    planner.use_iep = use_iep;
    const Configuration config =
        plan_configuration(pattern, GraphStats::of(g), planner);
    const Matcher matcher(g, config);
    Matcher::Workspace ws;
    Count embeddings = 0;
    records.push_back(time_kernel(name, [&] {
      embeddings = use_iep ? matcher.count(ws) : matcher.count_plain(ws);
      return static_cast<std::size_t>(embeddings);
    }));
    force_scalar_kernels(false);
  };
  count_case("count_house_rmat/scalar", patterns::house(), false, false);
  count_case("count_house_rmat/simd", patterns::house(), false, true);
  count_case("count_clique5_rmat/scalar", patterns::clique(5), true, false);
  count_case("count_clique5_rmat/simd", patterns::clique(5), true, true);

  // The runtime dispatch means the compiled-in flags no longer pin the
  // path: record which table actually ran and what the CPU offers.
  std::fprintf(f,
               "{\n  \"backend\": \"%s\",\n  \"active_isa\": \"%s\",\n"
               "  \"detected_isa\": \"%s\",\n  \"cpu_avx512\": %s,\n"
               "  \"results\": [\n",
               simd_backend(), active_isa(), detected_isa(),
               cpu_supports(KernelIsa::kAvx512) ? "true" : "false");
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"elements_per_s\": %.3e}%s\n",
                 records[i].name.c_str(), records[i].ns_per_op,
                 records[i].elements_per_s,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu kernel records to %s (active isa: %s, detected: %s)\n",
              records.size(), path.c_str(), active_isa(), detected_isa());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_micro_kernels.json";
      return run_json_suite(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
