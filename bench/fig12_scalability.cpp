// Figure 12 — scalability of the distributed runtime. The paper scales
// to 1,024 Tianhe-2A nodes; on one core we measure the *real* per-task
// costs of each workload once, then replay them through the
// discrete-event cluster simulator (round-robin placement + work
// stealing), reporting modeled speedup for 1..1024 nodes. DESIGN.md
// documents the substitution.
//
// Expected shape: near-linear speedup while tasks-per-node stays large
// (Orkut panel, P1/P4/P5/P6 in the paper); flattening when a few huge
// tasks dominate (the Twitter panel's load imbalance).
#include <iostream>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "dist/simulator.h"
#include "engine/matcher.h"
#include "support/table.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Figure 12", "simulated strong scaling, 1..1024 nodes");

  struct Panel {
    const char* graph;
    std::vector<int> patterns;
    std::vector<int> nodes;
  };
  const Panel panels[] = {
      {"orkut", {1, 2, 3, 4}, {1, 2, 4, 8, 16, 32, 64, 128}},
      {"twitter", {2, 3}, {128, 256, 512, 1024}},
  };

  for (const auto& panel : panels) {
    const Graph g = bench::bench_graph(panel.graph, mult);
    const GraphStats stats = GraphStats::of(g);
    std::cout << "-- " << panel.graph << " stand-in: " << g.vertex_count()
              << " vertices, " << g.edge_count() << " edges --\n";

    support::Table table({"pattern", "tasks", "nodes", "speedup",
                          "efficiency", "steals"});
    for (int pi : panel.patterns) {
      const Pattern p = patterns::evaluation_pattern(pi);
      PlannerOptions planner;
      planner.use_iep = true;
      const Configuration config = plan_configuration(p, stats, planner);
      const Matcher matcher(g, config);

      // Measure real per-task costs at the runtime's task granularity.
      std::vector<double> task_costs;
      Matcher::Workspace gen_ws, task_ws;
      matcher.enumerate_prefixes(
          gen_ws, 1, [&](std::span<const VertexId> prefix) {
            support::Timer t;
            (void)matcher.count_from_prefix(task_ws, prefix);
            task_costs.push_back(t.elapsed_seconds());
          });

      for (int nodes : panel.nodes) {
        const dist::SimResult r =
            dist::simulate_cluster(task_costs, nodes);
        table.add("P" + std::to_string(pi), task_costs.size(), nodes,
                  r.speedup_vs_serial(), r.efficiency(nodes), r.steals);
      }
    }
    table.print();
  }
  std::cout << "(speedup = measured total work / simulated makespan)\n";
  return 0;
}
