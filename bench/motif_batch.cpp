// Batched vs per-pattern motif census on the R-MAT reference input (the
// same graph micro_kernels uses for its end-to-end counting cases).
//
// The per-pattern arm is the historical census: plan and run one
// configuration per connected k-motif, rescanning the data graph each
// time. The batch arm compiles all plans into a prefix-sharing
// PlanForest and counts every motif in one traversal
// (GraphPi::count_batch). Both arms include planning and run serially,
// so the ratio isolates the executor difference.
//
// Two modes:
//   * default: human-readable table;
//   * `motif_batch --json [path]`: machine-readable records with the
//     micro_kernels schema — {name, ns_per_op, elements_per_s}, where
//     ns_per_op is one full census and elements_per_s is embeddings
//     counted per second — written to `path` (default
//     BENCH_motif_batch.json) so per-PR trajectories can track the
//     batch-over-per-pattern speedup.
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "api/graphpi.h"
#include "graph/generators.h"
#include "support/timer.h"

namespace {

using namespace graphpi;

/// The reference input: heavy-tailed hubs, the shape the hub-bitmap index
/// and the batch executor's leaf memoization are designed for.
Graph bench_rmat() { return rmat(10, 14000, 17); }

struct Record {
  std::string name;
  double ns_per_op = 0.0;
  double elements_per_s = 0.0;
};

/// Times one census repeatedly (at least 3 runs or 1 s) and keeps the
/// fastest steady-state run.
template <typename Census>
Record time_census(const std::string& name, Census&& census) {
  double best = -1.0;
  Count embeddings = 0;
  double total = 0.0;
  for (int rep = 0; rep < 3 || total < 1.0; ++rep) {
    support::Timer t;
    const std::vector<Count> counts = census();
    const double seconds = t.elapsed_seconds();
    total += seconds;
    if (best < 0 || seconds < best) {
      best = seconds;
      embeddings = std::accumulate(counts.begin(), counts.end(), Count{0});
    }
    if (rep >= 9) break;
  }
  Record r;
  r.name = name;
  r.ns_per_op = best * 1e9;
  r.elements_per_s = best > 0 ? static_cast<double>(embeddings) / best : 0.0;
  return r;
}

std::vector<Record> run_suite(bool verbose) {
  const Graph graph = bench_rmat();
  const GraphPi engine(graph);
  std::vector<Record> records;

  for (int k : {3, 4}) {
    const std::vector<Pattern> motifs = patterns::connected_motifs(k);
    const std::string prefix = "census" + std::to_string(k);

    records.push_back(
        time_census(prefix + "/per_pattern", [&engine, &motifs] {
          std::vector<Count> counts;
          counts.reserve(motifs.size());
          for (const Pattern& motif : motifs)
            counts.push_back(engine.count(motif, MatchOptions{}));
          return counts;
        }));
    records.push_back(time_census(prefix + "/batch", [&engine, &motifs] {
      return engine.count_batch(motifs);
    }));

    const Record& per = records[records.size() - 2];
    const Record& batch = records.back();
    if (verbose) {
      const PlanForest forest = engine.plan_batch(motifs);
      const auto& s = forest.stats();
      std::printf(
          "%s: per-pattern %.1f ms, batch %.1f ms -> %.2fx "
          "(%zu plans, %zu trie nodes, %zu shared steps, %zu shared "
          "suffix sets, %zu memoized leaves)\n",
          prefix.c_str(), per.ns_per_op / 1e6, batch.ns_per_op / 1e6,
          per.ns_per_op / batch.ns_per_op, s.plans, s.nodes, s.shared_steps,
          s.shared_suffix_sets, s.memoized_leaves);
    }
  }
  return records;
}

int write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  const std::vector<Record> records = run_suite(/*verbose=*/false);
  std::fprintf(f,
               "{\n  \"input\": \"rmat(10, 14000, 17)\",\n"
               "  \"active_isa\": \"%s\",\n  \"detected_isa\": \"%s\",\n"
               "  \"results\": [\n",
               active_isa(), detected_isa());
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"elements_per_s\": %.3e}%s\n",
                 records[i].name.c_str(), records[i].ns_per_op,
                 records[i].elements_per_s,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu census records to %s\n", records.size(),
              path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_motif_batch.json";
      return write_json(path);
    }
  }
  (void)run_suite(/*verbose=*/true);
  return 0;
}
