// Snapshot trajectory: what the mmap-able GPS1 format (src/io/) buys on
// the time-to-first-answer path, on a heavy-tailed R-MAT input.
//
// Arms:
//   * cold_build_to_first_count — generate the R-MAT graph from scratch,
//     construct the GraphPi engine (whose perf model computes the
//     triangle statistic), and count one pattern: the life of a process
//     that has no snapshot.
//   * load_to_first_count — mmap + SIMD-decode the degree-ordered
//     snapshot (which carries the cached triangle count in its header)
//     and run the same engine construction + count. The headline ratio
//     cold/load is gated >= 3x in CI.
//   * decode GB/s — MappedSnapshot::decode_graph under the scalar table
//     vs the best table the CPU selects, best-of-5; CI gates
//     SIMD >= scalar. Throughput is measured over the encoded payload
//     bytes (the bytes the varint kernels actually chew).
//   * encoded size — payload bytes/slot degree-ordered vs input
//     labeling, the compression half of reorder_by_degree().
//
// Modes:
//   * default: human-readable table;
//   * `snapshot --json [path]`: records in the motif_batch schema
//     ({name, ns_per_op, elements_per_s} + arm-specific extras) plus
//     top-level `summary` ratios for the CI gate and an embedded
//     end-of-run metrics registry snapshot, written to `path`
//     (default BENCH_snapshot.json).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/graphpi.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "io/snapshot.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace graphpi;

// ~1.2M undirected edges over 2^15 vertices: large enough that graph
// construction and the triangle statistic dominate a cold start, small
// enough for the one-core CI budget.
constexpr int kRmatScale = 15;
constexpr std::uint64_t kRmatEdges = 1'200'000;
constexpr std::uint64_t kRmatSeed = 99;

Graph bench_rmat() { return rmat(kRmatScale, kRmatEdges, kRmatSeed); }

/// The "first count": cheap on purpose (IEP collapses a path-3 count to
/// degree arithmetic), so both arms are dominated by how they *got* a
/// query-ready engine, which is what the snapshot changes.
Pattern first_pattern() { return patterns::path(3); }

struct Record {
  std::string name;
  double ns_per_op = 0.0;
  double elements_per_s = 0.0;  ///< slots/s or payload bytes/s
  std::uint64_t bytes = 0;
  Count count = 0;
};

Count first_count(const Graph& g) {
  return GraphPi(g).count(first_pattern());
}

template <typename F>
double best_of(int reps, F&& fn) {
  double best = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    support::Timer t;
    fn();
    const double s = t.elapsed_seconds();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

struct Suite {
  std::vector<Record> records;
  double cold_seconds = 0.0;
  double load_seconds = 0.0;
  double scalar_gbps = 0.0;
  double simd_gbps = 0.0;
};

Suite run_suite(bool verbose) {
  namespace fs = std::filesystem;
  Suite suite;
  const std::string dir = fs::temp_directory_path().string();
  const std::string ordered_path = dir + "/graphpi_bench_ordered.gps";
  const std::string unordered_path = dir + "/graphpi_bench_unordered.gps";

  // Prepare the snapshots (timed as the one-off "save" record).
  const Graph built = bench_rmat();
  (void)built.triangle_count();  // engine construction will want it anyway
  const std::uint64_t slots = built.directed_edge_count();
  io::SnapshotOptions options;
  options.degree_ordered = true;
  const double save_seconds = bench::time_once([&] {
    io::save_snapshot(built.reorder_by_degree(), ordered_path, options);
  });
  io::save_snapshot(built, unordered_path);

  const io::MappedSnapshot ordered(ordered_path);
  const io::MappedSnapshot unordered(unordered_path);
  suite.records.push_back({"save/ordered", save_seconds * 1e9,
                           static_cast<double>(slots) / save_seconds,
                           ordered.info().payload_bytes, 0});
  suite.records.push_back(
      {"encoded/input_labeling", 0.0, 0.0, unordered.info().payload_bytes, 0});

  // Time-to-first-count, cold vs snapshot. Each rep rebuilds/reloads from
  // nothing; GraphPi construction (stats incl. triangles) is inside the
  // timed region in both arms.
  Count cold_count = 0;
  suite.cold_seconds = best_of(3, [&] {
    const Graph g = bench_rmat();
    cold_count = first_count(g);
  });
  Count warm_count = 0;
  suite.load_seconds = best_of(3, [&] {
    const Graph g = Graph::load_snapshot(ordered_path);
    warm_count = first_count(g);
  });
  if (cold_count != warm_count) {
    std::fprintf(stderr, "FATAL: snapshot arm count mismatch (%llu vs %llu)\n",
                 static_cast<unsigned long long>(cold_count),
                 static_cast<unsigned long long>(warm_count));
    std::exit(1);
  }
  suite.records.push_back({"cold_build_to_first_count",
                           suite.cold_seconds * 1e9,
                           static_cast<double>(slots) / suite.cold_seconds, 0,
                           cold_count});
  suite.records.push_back({"load_to_first_count", suite.load_seconds * 1e9,
                           static_cast<double>(slots) / suite.load_seconds, 0,
                           warm_count});

  // Decode bandwidth, scalar vs the best table this CPU selects — two
  // granularities. decode_graph (informational) carries CRC verification
  // and row reconstruction, so the kernel's share is diluted; the gated
  // scalar/simd numbers time the varint kernel alone on the same byte
  // stream the degree-ordered snapshot stores.
  const std::uint64_t payload = ordered.info().payload_bytes;
  const Graph reordered = built.reorder_by_degree();
  std::vector<std::uint8_t> stream;
  stream.reserve(payload);
  for (VertexId v = 0; v < reordered.vertex_count(); ++v) {
    const auto adj = reordered.neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i)
      io::append_varint(stream, i == 0 ? adj[0] : adj[i] - adj[i - 1]);
  }
  std::vector<std::uint32_t> decoded(slots);
  const KernelIsa previous = active_kernel_isa();
  const auto decode_arm = [&](KernelIsa isa, const char* name, double& gbps) {
    if (!select_kernel_isa(isa)) return;
    const double kernel_seconds = best_of(5, [&] {
      if (varint_decode_u32(stream, slots, decoded.data()) != stream.size()) {
        std::fprintf(stderr, "FATAL: varint stream decode failed\n");
        std::exit(1);
      }
    });
    gbps = static_cast<double>(stream.size()) / kernel_seconds / 1e9;
    suite.records.push_back({std::string("varint_decode/") + name + "/" +
                                 active_isa(),
                             kernel_seconds * 1e9,
                             static_cast<double>(stream.size()) /
                                 kernel_seconds,
                             stream.size(), 0});
    const double graph_seconds =
        best_of(5, [&] { (void)ordered.decode_graph(); });
    suite.records.push_back({std::string("decode_graph/") + name + "/" +
                                 active_isa(),
                             graph_seconds * 1e9,
                             static_cast<double>(payload) / graph_seconds,
                             payload, 0});
  };
  decode_arm(KernelIsa::kScalar, "scalar", suite.scalar_gbps);
  decode_arm(KernelIsa::kAuto, "simd", suite.simd_gbps);
  select_kernel_isa(previous);

  if (verbose) {
    bench::banner("snapshot", "mmap + SIMD-decode vs cold rebuild");
    support::Table table({"arm", "seconds", "payload B", "count"});
    for (const Record& r : suite.records) {
      char secs[32];
      std::snprintf(secs, sizeof(secs), "%.4f", r.ns_per_op / 1e9);
      table.add(r.name, secs, r.bytes, r.count);
    }
    table.print();
    std::printf("load_vs_cold: %.2fx   decode scalar %.3f GB/s, simd %.3f GB/s\n",
                suite.cold_seconds / suite.load_seconds, suite.scalar_gbps,
                suite.simd_gbps);
  }

  fs::remove(ordered_path);
  fs::remove(unordered_path);
  return suite;
}

int write_json(const std::string& path) {
  const Suite suite = run_suite(/*verbose=*/false);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"input\": \"rmat(" << kRmatScale << ", " << kRmatEdges << ", "
      << kRmatSeed << ")\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"summary\": {\"cold_seconds\": %.6f, \"load_seconds\": "
                "%.6f, \"load_vs_cold_speedup\": %.3f, \"scalar_gbps\": %.4f, "
                "\"simd_gbps\": %.4f},\n",
                suite.cold_seconds, suite.load_seconds,
                suite.cold_seconds / suite.load_seconds, suite.scalar_gbps,
                suite.simd_gbps);
  out << buf;
  out << "  \"metrics\": " << bench::metrics_snapshot_json() << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < suite.records.size(); ++i) {
    const Record& r = suite.records[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                  "\"elements_per_s\": %.3e, \"bytes\": %llu, \"count\": %llu}",
                  r.name.c_str(), r.ns_per_op, r.elements_per_s,
                  static_cast<unsigned long long>(r.bytes),
                  static_cast<unsigned long long>(r.count));
    out << buf << (i + 1 < suite.records.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_snapshot.json";
      return write_json(path);
    }
  }
  (void)run_suite(/*verbose=*/true);
  return 0;
}
