// Ablation — what the performance model's inputs buy (DESIGN.md design
// choice; the paper argues pattern-only planners like Peregrine lose by
// ignoring the data graph, and GraphZero-style estimators lose by
// ignoring clustering and restrictions).
//
// Three planner variants pick a schedule for each pattern:
//   full     — GraphPi: |V|, |E|, tri_cnt, restriction-aware f_i
//   no-tri   — clustering-blind: tri_cnt replaced so p2 = p1 (GraphZero's
//              density-only extrapolation)
//   pattern  — data-blind: fixed canned statistics regardless of graph
//              (Peregrine-style pattern-only scheduling)
// Each selected schedule is then run for real; lower is better.
#include <iostream>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Ablation", "performance-model inputs (seconds to count)");

  constexpr double kBudget = 10.0;
  support::Table table(
      {"graph", "pattern", "full", "no-tri", "pattern-only"});

  for (const char* name : {"wiki_vote", "patents"}) {
    const Graph g = bench::bench_graph(name, 0.5 * mult);
    const GraphStats stats = GraphStats::of(g);

    GraphStats no_tri = stats;
    // p2 == p1 <=> tri_cnt = 4|E|^2 p1 / |V| ... simpler: solve p2()=p1():
    // tri * |V| / (4 E^2) = 2E/|V|^2  =>  tri = 8 E^3 / |V|^3.
    no_tri.triangles =
        8.0 * stats.edges * stats.edges * stats.edges /
        (stats.vertices * stats.vertices * stats.vertices);

    // Canned pattern-only statistics: a nominal sparse graph.
    GraphStats canned;
    canned.vertices = 1'000'000;
    canned.edges = 10'000'000;
    canned.triangles = 30'000'000;

    for (int i = 1; i <= 4; ++i) {
      const Pattern p = patterns::evaluation_pattern(i);
      auto run = [&](const GraphStats& planning_stats) {
        const Configuration config =
            plan_configuration(p, planning_stats, PlannerOptions{});
        return bench::count_plain_with_budget(g, config, kBudget).seconds;
      };
      table.add(name, "P" + std::to_string(i), bench::fmt_time(run(stats)),
                bench::fmt_time(run(no_tri)), bench::fmt_time(run(canned)));
    }
  }
  table.print();
  std::cout << "(all variants produce identical counts; only schedule/"
               "restriction choices differ)\n";
  return 0;
}
