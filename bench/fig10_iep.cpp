// Figure 10 — counting with vs without the Inclusion–Exclusion Principle,
// same configuration otherwise (the paper's protocol: "we use the same
// configuration selected by GraphPi's performance model ... we avoid the
// influence of schedules and sets of restrictions").
//
// Expected shape: IEP wins everywhere; the factor explodes for patterns
// with a large independent suffix (the paper reports up to 1110x for P2).
// "T" = cut off by the per-cell budget; the speedup column then shows a
// lower bound computed from the budget.
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "support/table.h"

namespace {
constexpr double kIepBudgetSeconds = 4.0;
constexpr double kPlainBudgetSeconds = 8.0;
}

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Figure 10", "counting with vs without IEP (seconds)");

  const char* graphs[] = {"wiki_vote", "mico", "patents", "livejournal",
                          "orkut"};
  support::Table table({"graph", "pattern", "k", "with IEP", "without",
                        "speedup"});

  for (const char* name : graphs) {
    const Graph g = bench::bench_graph(name, mult);
    const GraphStats stats = GraphStats::of(g);
    for (int i = 1; i <= 6; ++i) {
      const Pattern p = patterns::evaluation_pattern(i);
      PlannerOptions planner;
      planner.use_iep = true;
      const Configuration config = plan_configuration(p, stats, planner);

      const bench::BudgetedRun with_iep = bench::count_with_budget(
          Matcher(g, config), kIepBudgetSeconds);

      bench::BudgetedRun plain;
      if (with_iep.seconds.has_value()) {
        plain =
            bench::count_plain_with_budget(g, config, kPlainBudgetSeconds);
        if (plain.seconds.has_value() && plain.count != with_iep.count) {
          std::cerr << "BUG: IEP/plain disagreement on " << name << " P"
                    << i << "\n";
          return 1;
        }
      }

      std::string speedup = "-";
      if (with_iep.seconds.has_value()) {
        if (plain.seconds.has_value()) {
          speedup = bench::fmt_speedup(*plain.seconds /
                                       std::max(*with_iep.seconds, 1e-9));
        } else {
          speedup = ">" + bench::fmt_speedup(
                              kPlainBudgetSeconds /
                              std::max(*with_iep.seconds, 1e-9));
        }
      }
      table.add(name, "P" + std::to_string(i), config.iep.k,
                bench::fmt_time(with_iep.seconds),
                bench::fmt_time(plain.seconds), speedup);
    }
  }
  table.print();
  return 0;
}
