// Table I — graph datasets. Prints the published statistics next to the
// synthetic stand-ins actually used by the benches.
#include <iostream>

#include "bench_util.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Table I", "graph datasets (paper vs stand-in)");

  support::Table table({"graph", "description", "paper |V|", "paper |E|",
                        "standin |V|", "standin |E|", "triangles",
                        "max deg"});
  for (const auto& spec : datasets::specs()) {
    const Graph g = bench::bench_graph(spec.name, mult);
    table.add(spec.name, spec.description, spec.paper_vertices,
              spec.paper_edges, g.vertex_count(), g.edge_count(),
              g.triangle_count(), g.max_degree());
  }
  table.print();
  std::cout << "(stand-in sizes reflect the calibrated bench scales; "
               "multiply with argv[1])\n";
  return 0;
}
