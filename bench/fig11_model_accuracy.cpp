// Figure 11 — accuracy of the performance-prediction model: for every
// pattern on Wiki-Vote and Patents, run all generated schedules (each
// with its model-best restriction set) and compare the schedule the model
// selects against the oracle (fastest measured).
//
// Expected shape: the selected schedule lands within a few tens of
// percent of the oracle (the paper reports 32% slower on average, with
// P4 on Wiki-Vote the outlier).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/matcher.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Figure 11", "model-selected vs oracle schedule (seconds)");

  support::Table table({"graph", "pattern", "measured", "selected(s)",
                        "oracle(s)", "selected/oracle"});
  double ratio_sum = 0.0;
  int ratio_count = 0;

  for (const char* name : {"wiki_vote", "patents"}) {
    // 7-vertex patterns have hundreds of efficient schedules; scale the
    // graph down so the full sweep stays affordable.
    for (int i = 1; i <= 6; ++i) {
      const Pattern p = patterns::evaluation_pattern(i);
      const double pattern_mult = p.size() >= 7 ? 0.25 * mult : mult;
      const Graph g = bench::bench_graph(name, pattern_mult);
      const GraphStats stats = GraphStats::of(g);

      const auto generated = generate_schedules(p);
      const auto sets = generate_restriction_sets(p);

      // Score every efficient schedule with the model, then *measure* a
      // bounded subset: every schedule for small spaces, otherwise the
      // model's best 24 plus an even spread of 24 across the ranking
      // (the oracle of the measured subset is what we compare against;
      // the spread keeps slow schedules represented).
      std::vector<Configuration> scored;
      scored.reserve(generated.efficient.size());
      for (const auto& sched : generated.efficient)
        scored.push_back(
            best_configuration_for_schedule(p, sched, sets, stats));
      std::sort(scored.begin(), scored.end(),
                [](const Configuration& a, const Configuration& b) {
                  return a.predicted_cost < b.predicted_cost;
                });
      std::vector<std::size_t> to_measure;
      constexpr std::size_t kHead = 16, kSpread = 16;
      if (scored.size() <= kHead + kSpread) {
        for (std::size_t s = 0; s < scored.size(); ++s)
          to_measure.push_back(s);
      } else {
        for (std::size_t s = 0; s < kHead; ++s) to_measure.push_back(s);
        for (std::size_t s = 0; s < kSpread; ++s)
          to_measure.push_back(kHead +
                               s * (scored.size() - kHead) / kSpread);
      }

      constexpr double kScheduleBudgetSeconds = 1.5;
      double oracle = 1e100;
      double selected = 0.0;
      for (const std::size_t idx : to_measure) {
        const bench::BudgetedRun run = bench::count_plain_with_budget(
            g, scored[idx], kScheduleBudgetSeconds);
        // A cut-off schedule is at least as slow as the budget; that is
        // enough for oracle/selected comparisons at these scales.
        const double secs = run.seconds.value_or(kScheduleBudgetSeconds);
        oracle = std::min(oracle, secs);
        if (idx == 0) selected = secs;  // the model's pick
      }
      const double ratio = selected / std::max(oracle, 1e-9);
      ratio_sum += ratio;
      ++ratio_count;
      table.add(name, "P" + std::to_string(i), to_measure.size(), selected,
                oracle, ratio);
    }
  }
  table.print();
  std::cout << "average selected/oracle: " << ratio_sum / ratio_count
            << " (paper: 1.32)\n";
  return 0;
}
