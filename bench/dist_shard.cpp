// Sharded distributed runtime trajectory: the batched 4-motif census on
// the R-MAT reference input (the same graph motif_batch uses), executed
// by the sharded cluster at increasing node counts, recording wall time,
// the message/byte economy, and the comm-cost model's projected makespan.
//
// Two arms per node count:
//   * lockstep — the deterministic round-robin reference executor;
//   * async    — the worker-thread runtime with bounded mailboxes and
//                coalesced continuation flushes, whose wall-clock win
//                over lockstep (frames amortized, no global round scans)
//                is the headline the per-PR trajectory tracks, alongside
//                the flush/coalescing counters and mailbox high water.
//
// Modes:
//   * default: human-readable table;
//   * `dist_shard --json [path]`: machine-readable records in the
//     motif_batch schema — {name, ns_per_op, elements_per_s} — extended
//     with the run's messages, bytes, async counters and projected
//     makespan, written to `path` (default BENCH_dist_shard.json),
//     plus a `metrics` object embedding the end-of-run registry
//     snapshot (support/metrics.h).
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "api/graphpi.h"
#include "bench_util.h"
#include "dist/runtime.h"
#include "dist/simulator.h"
#include "graph/generators.h"
#include "support/timer.h"

namespace {

using namespace graphpi;

Graph bench_rmat() { return rmat(10, 14000, 17); }

struct Record {
  std::string name;
  double ns_per_op = 0.0;
  double elements_per_s = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double projected_makespan_ns = 0.0;
  // Async-arm extras (zero in lockstep records).
  std::uint64_t flushes = 0;
  std::uint64_t coalesced_frames = 0;
  std::uint64_t coalesced_payloads = 0;
  std::uint64_t mailbox_stalls = 0;
  std::uint64_t mailbox_high_water = 0;
};

Record run_arm(const Graph& graph, const PlanForest& forest, int nodes,
               dist::ExecMode exec, bool verbose) {
  dist::ClusterOptions options;
  options.nodes = nodes;
  options.task_depth = 2;
  options.exec = exec;
  dist::ClusterStats stats;
  double best = -1.0;
  Count embeddings = 0;
  double total = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    dist::ClusterStats rep_stats;
    support::Timer t;
    const std::vector<Count> counts =
        dist::distributed_count_batch(graph, forest, options, &rep_stats);
    const double seconds = t.elapsed_seconds();
    total += seconds;
    if (best < 0 || seconds < best) {
      best = seconds;
      stats = rep_stats;
      embeddings = std::accumulate(counts.begin(), counts.end(), Count{0});
    }
    if (total > 4.0) break;
  }
  const dist::ShardSimResult sim = dist::simulate_sharded_cluster(
      stats.seconds_per_node, stats.sent_messages_per_node,
      stats.sent_bytes_per_node);
  Record r;
  r.name = "census4/nodes" + std::to_string(nodes) + "/hash";
  if (exec == dist::ExecMode::kAsync) r.name += "/async";
  r.ns_per_op = best * 1e9;
  r.elements_per_s = best > 0 ? static_cast<double>(embeddings) / best : 0.0;
  r.messages = stats.messages;
  r.bytes = stats.bytes;
  r.projected_makespan_ns = sim.makespan_seconds * 1e9;
  r.flushes = stats.flushes;
  r.coalesced_frames = stats.coalesced_frames;
  r.coalesced_payloads = stats.coalesced_payloads;
  r.mailbox_stalls = stats.mailbox_stalls;
  r.mailbox_high_water = stats.mailbox_high_water;
  if (verbose) {
    std::printf(
        "%s: wall %.1f ms, %llu msgs (%llu B, %llu candidate vertices "
        "shipped), replication %.2f, projected makespan %.2f ms\n",
        r.name.c_str(), r.ns_per_op / 1e6,
        static_cast<unsigned long long>(stats.messages),
        static_cast<unsigned long long>(stats.bytes),
        static_cast<unsigned long long>(stats.shipped_set_vertices),
        stats.replication_factor, r.projected_makespan_ns / 1e6);
    if (exec == dist::ExecMode::kAsync)
      std::printf(
        "  async: %llu continuations in %llu batch frames (%llu flushes), "
        "%llu mailbox stalls, high water %llu\n",
        static_cast<unsigned long long>(r.coalesced_payloads),
        static_cast<unsigned long long>(r.coalesced_frames),
        static_cast<unsigned long long>(r.flushes),
        static_cast<unsigned long long>(r.mailbox_stalls),
        static_cast<unsigned long long>(r.mailbox_high_water));
  }
  return r;
}

std::vector<Record> run_suite(bool verbose) {
  const Graph graph = bench_rmat();
  const GraphPi engine(graph);
  const std::vector<Pattern> motifs = patterns::connected_motifs(4);
  const PlanForest forest = engine.plan_batch(motifs);

  std::vector<Record> records;
  for (const int nodes : {1, 2, 4, 8}) {
    records.push_back(
        run_arm(graph, forest, nodes, dist::ExecMode::kLockstep, verbose));
    // nodes == 1 short-circuits to the local batch engine in both modes.
    if (nodes > 1)
      records.push_back(
          run_arm(graph, forest, nodes, dist::ExecMode::kAsync, verbose));
  }
  return records;
}

int write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  const std::vector<Record> records = run_suite(/*verbose=*/false);
  std::fprintf(f,
               "{\n  \"input\": \"rmat(10, 14000, 17)\",\n"
               "  \"metrics\": %s,\n"
               "  \"results\": [\n",
               bench::metrics_snapshot_json().c_str());
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"elements_per_s\": %.3e, \"messages\": %llu, "
                 "\"bytes\": %llu, \"projected_makespan_ns\": %.3f, "
                 "\"flushes\": %llu, \"coalesced_frames\": %llu, "
                 "\"coalesced_payloads\": %llu, \"mailbox_stalls\": %llu, "
                 "\"mailbox_high_water\": %llu}%s\n",
                 records[i].name.c_str(), records[i].ns_per_op,
                 records[i].elements_per_s,
                 static_cast<unsigned long long>(records[i].messages),
                 static_cast<unsigned long long>(records[i].bytes),
                 records[i].projected_makespan_ns,
                 static_cast<unsigned long long>(records[i].flushes),
                 static_cast<unsigned long long>(records[i].coalesced_frames),
                 static_cast<unsigned long long>(
                     records[i].coalesced_payloads),
                 static_cast<unsigned long long>(records[i].mailbox_stalls),
                 static_cast<unsigned long long>(
                     records[i].mailbox_high_water),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu sharded census records to %s\n", records.size(),
              path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_dist_shard.json";
      return write_json(path);
    }
  }
  (void)run_suite(/*verbose=*/true);
  return 0;
}
