// Service trajectory: what the long-running server (src/service/) buys
// over cold per-query process startup, measured over a real TCP socket.
//
// Arms, per concurrency level N in {1, 4, 8}:
//   * cold p50/p99 — each client's first round of generated-backend
//     queries against a fresh Server with an empty plan cache and a
//     fresh on-disk kernel cache (GRAPHPI_KERNEL_CACHE_DIR is pointed
//     at a throwaway temp dir before the first JIT use): every query
//     pays planning + JIT compilation, the life of a one-shot CLI run.
//     Each level uses its own pattern set so its cold round really
//     compiles.
//   * warm p50/p99 + queries/sec — subsequent rounds of the same
//     queries: plans come from the server's memo, kernels from the
//     process cache. The CI gate asserts warm p50 << cold p50.
//   * shed arm — a workers=1 / queue_capacity=2 server under a burst of
//     50 queries behind a sleeping debug job: fraction shed and the
//     immediacy of the rejection (shed responses must return in
//     microseconds, not queue time).
//
// Modes: default human table; `service --json [path]` writes
// BENCH_service.json ({levels: [...], shed: {...}} plus an embedded
// metrics registry snapshot).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "graph/generators.h"
#include "service/server.h"
#include "support/timer.h"

namespace {

using namespace graphpi;

/// Per-level pattern sets, disjoint so every level's cold round compiles
/// its own kernels instead of inheriting the previous level's.
// Cheap-to-execute patterns on the bench graph, so both the cold and
// warm arms are dominated by how the query got a runnable kernel
// (planning + JIT compile vs cache hits) rather than by enumeration.
const std::vector<std::vector<std::string>> kLevelPatterns = {
    {"triangle", "rectangle", "house"},
    {"tailed_triangle", "clique4", "star5"},
    {"hourglass", "cycle_6_tri", "path4"},
};
const std::vector<int> kLevels = {1, 4, 8};
constexpr int kWarmRounds = 12;

/// Blocking line client (same shape as tests/service/service_test.cpp).
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

  bool send_line(const std::string& line) {
    const std::string data = line + "\n";
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool read_line(std::string* out, int timeout_ms = 120000) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct LevelResult {
  int clients = 0;
  double cold_p50_ms = 0, cold_p99_ms = 0;
  double warm_p50_ms = 0, warm_p99_ms = 0;
  double queries_per_s = 0;
  std::uint64_t served = 0;
};

/// One round-trip query; returns latency in ms (negative on failure).
double timed_query(Client& c, const std::string& spec) {
  support::Timer t;
  if (!c.send_line("{\"pattern\":\"" + spec +
                   "\",\"backend\":\"generated\"}"))
    return -1.0;
  std::string line;
  if (!c.read_line(&line)) return -1.0;
  return t.elapsed_seconds() * 1e3;
}

LevelResult run_level(const Graph& g, int n_clients,
                      const std::vector<std::string>& specs) {
  service::ServiceConfig config;
  config.workers = 2;
  service::Server server(g, config);
  server.start();

  std::vector<std::vector<double>> cold(static_cast<std::size_t>(n_clients));
  std::vector<std::vector<double>> warm(static_cast<std::size_t>(n_clients));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_clients));
  for (int i = 0; i < n_clients; ++i) {
    threads.emplace_back([&, i] {
      Client c(server.port());
      if (!c.ok()) return;
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int round = 0; round <= kWarmRounds; ++round)
        for (const std::string& spec : specs) {
          const double ms = timed_query(c, spec);
          if (ms < 0) return;
          (round == 0 ? cold : warm)[static_cast<std::size_t>(i)].push_back(ms);
        }
    });
  }
  while (ready.load() < n_clients) std::this_thread::yield();
  support::Timer wall;
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.elapsed_seconds();
  server.shutdown();

  std::vector<double> all_cold, all_warm;
  for (const auto& v : cold) all_cold.insert(all_cold.end(), v.begin(), v.end());
  for (const auto& v : warm) all_warm.insert(all_warm.end(), v.begin(), v.end());

  LevelResult r;
  r.clients = n_clients;
  r.cold_p50_ms = percentile(all_cold, 0.50);
  r.cold_p99_ms = percentile(all_cold, 0.99);
  r.warm_p50_ms = percentile(all_warm, 0.50);
  r.warm_p99_ms = percentile(all_warm, 0.99);
  r.served = all_cold.size() + all_warm.size();
  r.queries_per_s = static_cast<double>(r.served) / wall_s;
  return r;
}

struct ShedResult {
  std::uint64_t sent = 0;
  std::uint64_t shed = 0;
  std::uint64_t served = 0;
  double shed_rate = 0;
  double shed_p99_ms = 0;  ///< rejection latency — must be immediate
};

ShedResult run_shed(const Graph& g) {
  service::ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.limits.allow_debug_commands = true;
  service::Server server(g, config);
  server.start();

  ShedResult r;
  Client c(server.port());
  if (!c.ok()) return r;
  // Park the single worker, then PIPELINE a burst well past queue
  // capacity — a request/response loop would never hold more than one
  // query in flight and the queue could never fill.
  c.send_line("{\"cmd\":\"sleep\",\"ms\":400}");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  constexpr int kBurst = 50;
  support::Timer burst_t;
  for (int i = 0; i < kBurst; ++i)
    if (c.send_line("{\"pattern\":\"house\"}")) ++r.sent;
  // Shed rejections must come back while the worker is still parked;
  // their arrival offset from the burst start is the rejection latency.
  std::vector<double> shed_ms;
  std::string line;
  for (std::uint64_t i = 0; i < r.sent + 1; ++i) {
    if (!c.read_line(&line)) break;
    if (line.find("\"status\":\"shed\"") != std::string::npos)
      shed_ms.push_back(burst_t.elapsed_seconds() * 1e3);
  }
  const service::ServerStats stats = server.stats();
  server.shutdown();
  r.shed = stats.shed;
  r.served = stats.served;
  r.shed_rate = r.sent > 0 ? static_cast<double>(r.shed) /
                                 static_cast<double>(r.sent)
                           : 0.0;
  r.shed_p99_ms = percentile(shed_ms, 0.99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  // Fresh kernel cache: the cold arms must pay JIT compilation the way
  // a first-ever process run would. Must precede the first JIT use
  // (the singleton reads the env once at construction).
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("graphpi-bench-service-" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(cache_dir);
  ::setenv("GRAPHPI_KERNEL_CACHE_DIR", cache_dir.c_str(), 1);

  const bool json_mode = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const std::string json_path =
      argc > 2 ? argv[2] : "BENCH_service.json";

  const Graph g = clustered_power_law(300, 2400, 2.2, 0.5, /*seed=*/17);

  bench::banner("service", "query service throughput + latency");
  std::vector<LevelResult> levels;
  for (std::size_t li = 0; li < kLevels.size(); ++li) {
    levels.push_back(run_level(g, kLevels[li], kLevelPatterns[li]));
    const LevelResult& r = levels.back();
    std::printf(
        "clients=%d  cold p50/p99 = %8.3f / %8.3f ms   "
        "warm p50/p99 = %8.3f / %8.3f ms   %7.1f q/s\n",
        r.clients, r.cold_p50_ms, r.cold_p99_ms, r.warm_p50_ms, r.warm_p99_ms,
        r.queries_per_s);
  }
  const ShedResult shed = run_shed(g);
  std::printf(
      "shed: %llu/%llu rejected (rate %.2f), rejection p99 = %.3f ms\n",
      static_cast<unsigned long long>(shed.shed),
      static_cast<unsigned long long>(shed.sent), shed.shed_rate,
      shed.shed_p99_ms);

  std::filesystem::remove_all(cache_dir);

  if (json_mode) {
    std::ofstream out(json_path);
    out << "{\n  \"input\": \"clustered_power_law(300, 2400, 2.2, 0.5, 17)\","
        << "\n  \"levels\": [\n";
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const LevelResult& r = levels[i];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "    {\"clients\": %d, \"cold_p50_ms\": %.3f, "
                    "\"cold_p99_ms\": %.3f, \"warm_p50_ms\": %.3f, "
                    "\"warm_p99_ms\": %.3f, \"queries_per_s\": %.1f, "
                    "\"served\": %llu}%s\n",
                    r.clients, r.cold_p50_ms, r.cold_p99_ms, r.warm_p50_ms,
                    r.warm_p99_ms, r.queries_per_s,
                    static_cast<unsigned long long>(r.served),
                    i + 1 < levels.size() ? "," : "");
      out << buf;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"shed\": {\"sent\": %llu, \"shed\": %llu, "
                  "\"served\": %llu, \"shed_rate\": %.3f, "
                  "\"shed_p99_ms\": %.3f},\n",
                  static_cast<unsigned long long>(shed.sent),
                  static_cast<unsigned long long>(shed.shed),
                  static_cast<unsigned long long>(shed.served), shed.shed_rate,
                  shed.shed_p99_ms);
    out << buf << "  \"metrics\": " << bench::metrics_snapshot_json()
        << "\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
