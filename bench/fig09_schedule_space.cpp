// Figure 9 — the schedule space of P3 on Wiki-Vote: execution time of
// every schedule, split into the populations the paper plots:
//   * schedules eliminated by the 2-phase generator ("x" markers),
//   * schedules it generates ("o" markers),
//   * the schedule GraphZero selects (red triangle),
//   * the schedule GraphPi's model selects (blue star).
//
// Expected shape: the eliminated population is dominated by slow
// schedules; GraphPi's pick lands near the oracle; GraphZero's pick can
// land far from it.
//
// Measuring all 720 schedules of a 6-vertex pattern is the expensive part
// of this figure; eliminated schedules are sampled (they only provide the
// background population).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/configuration.h"
#include "core/pattern_library.h"
#include "engine/graphzero.h"
#include "engine/matcher.h"
#include "support/rng.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace graphpi;
  const double mult = bench::scale_multiplier(argc, argv);
  bench::banner("Figure 9", "all schedules of P3 on wiki_vote");

  const Pattern p = patterns::evaluation_pattern(3);
  const Graph g = bench::bench_graph("wiki_vote", 0.6 * mult);
  const GraphStats stats = GraphStats::of(g);

  const auto generated = generate_schedules(p);
  const auto restriction_sets = generate_restriction_sets(p);
  std::cout << "schedules: " << all_schedules(p).size() << " total, "
            << generated.phase1.size() << " phase-1, "
            << generated.efficient.size() << " efficient (k=" << generated.k
            << ")\n";

  // The populations to measure: all efficient schedules + a deterministic
  // sample of eliminated ones.
  struct Entry {
    Schedule schedule;
    bool efficient;
  };
  std::vector<Entry> entries;
  for (const auto& s : generated.efficient) entries.push_back({s, true});

  std::vector<Schedule> eliminated;
  for (const auto& s : all_schedules(p)) {
    const bool is_efficient =
        std::find(generated.efficient.begin(), generated.efficient.end(),
                  s) != generated.efficient.end();
    if (!is_efficient) eliminated.push_back(s);
  }
  support::Xoshiro256StarStar rng(2020);
  const std::size_t sample =
      std::min<std::size_t>(eliminated.size(), 24);
  for (std::size_t i = 0; i < sample; ++i) {
    const std::size_t j = i + rng.bounded(eliminated.size() - i);
    std::swap(eliminated[i], eliminated[j]);
    entries.push_back({eliminated[i], false});
  }

  const Schedule graphzero_pick = graphzero::select_schedule(p, stats);
  Configuration graphpi_pick =
      plan_configuration(p, stats, PlannerOptions{});

  // Make sure the GraphZero selection is measured even when it falls in
  // the eliminated population (that is exactly the paper's point).
  const bool gz_measured =
      std::any_of(entries.begin(), entries.end(), [&](const Entry& e) {
        return e.schedule == graphzero_pick;
      });
  if (!gz_measured) {
    const bool gz_efficient =
        std::find(generated.efficient.begin(), generated.efficient.end(),
                  graphzero_pick) != generated.efficient.end();
    entries.push_back({graphzero_pick, gz_efficient});
  }

  constexpr double kScheduleBudgetSeconds = 4.0;
  struct Row {
    std::string klass;
    std::string schedule;
    double predicted;
    double measured;  // budget value when cut off (a lower bound)
    bool finished;
  };
  std::vector<Row> rows;
  Count reference = 0;
  for (const auto& [sched, efficient] : entries) {
    const Configuration config = best_configuration_for_schedule(
        p, sched, restriction_sets, stats);
    const bench::BudgetedRun run = bench::count_plain_with_budget(
        g, config, kScheduleBudgetSeconds);
    if (run.seconds.has_value()) {
      if (reference == 0) reference = run.count;
      if (run.count != reference) {
        std::cerr << "BUG: schedule " << sched.to_string()
                  << " returned a different count\n";
        return 1;
      }
    }
    std::string klass = efficient ? "generated" : "eliminated";
    if (sched == graphzero_pick) klass += "+GZ-pick";
    if (sched == graphpi_pick.schedule) klass += "+GraphPi-pick";
    rows.push_back({klass, sched.to_string(), config.predicted_cost,
                    run.seconds.value_or(kScheduleBudgetSeconds),
                    run.seconds.has_value()});
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.measured < b.measured; });
  support::Table table({"rank", "class", "schedule", "predicted",
                        "measured(s)"});
  for (std::size_t i = 0; i < rows.size(); ++i)
    table.add(i + 1, rows[i].klass, rows[i].schedule, rows[i].predicted,
              rows[i].finished
                  ? support::Table::to_cell(rows[i].measured)
                  : ">" + support::Table::to_cell(rows[i].measured));
  table.print();

  // Summary statistics matching the paper's narrative.
  const auto slowest_generated =
      std::max_element(rows.begin(), rows.end(), [](const Row& a,
                                                    const Row& b) {
        const bool ag = a.klass.rfind("generated", 0) == 0;
        const bool bg = b.klass.rfind("generated", 0) == 0;
        if (ag != bg) return !ag;  // only generated participate
        return a.measured < b.measured;
      });
  const double oracle = rows.front().measured;
  std::cout << "oracle " << oracle << "s; slowest generated schedule is "
            << slowest_generated->measured / std::max(oracle, 1e-9)
            << "x the oracle (paper: 8.0x)\n";
  for (const auto& r : rows)
    if (r.klass.find("GraphPi-pick") != std::string::npos)
      std::cout << "GraphPi pick: " << r.measured / std::max(oracle, 1e-9)
                << "x the oracle (paper: 1.22x)\n";
  for (const auto& r : rows)
    if (r.klass.find("GZ-pick") != std::string::npos)
      std::cout << "GraphZero pick: " << r.measured / std::max(oracle, 1e-9)
                << "x the oracle\n";
  return 0;
}
